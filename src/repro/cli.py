"""``ensemfdet`` command-line interface.

Subcommands::

    ensemfdet detect <edges.tsv> [--detector SPEC] [--ratio S] [--samples N] [...]
    ensemfdet detectors [--list]
    ensemfdet watch <edges.tsv> --state <state.npz> [--window N] [--horizon H] [...]
    ensemfdet serve <edges.tsv> --state <state.npz> [--host H] [--port P] [...]
    ensemfdet update [delta.tsv] --state <state.npz> [--remove removals.tsv] [...]
    ensemfdet dataset <outdir> [--index I] [--scale X] [--seed K]
    ensemfdet stats <edges.tsv>
    ensemfdet experiments [ids...] [--scale ...] [--outdir ...]
    ensemfdet scenario [--list] [--scenarios a,b] [--detectors SPEC,...] [...]

``detect`` runs the ensemble by default; ``--detector`` accepts any
registry spec (``fraudar:n_blocks=8``, ``spoken``, ``degree:weighted=1``,
...) and prints that detector's suspiciousness ranking instead.
``detectors`` lists the registry. ``watch`` keeps warm detection state in
a ``.npz`` archive and tails a growing edge-list file, re-detecting only
the ensemble members a new batch of edges invalidates; ``--window N`` /
``--horizon H`` switch the cold fit to a rolling window (old batches
expire instead of accumulating forever). ``update`` applies one explicit
delta file and/or a ``--remove`` deletion file to the same state. Both
print the refreshed detection in the ``detect`` format. ``serve`` exposes
the same warm state as a long-running HTTP scoring service (ingest edge
deltas over ``POST /ingest``, read scores from ``GET /score``/``/top``/
``/blocks`` without blocking behind a re-fit; see :mod:`repro.serve`). ``scenario``
sweeps the adversarial-attack robustness grid (detector × attack shape ×
intensity) over any set of registry specs; ``scenario --drift`` replays
the temporal scenarios batch-by-batch against windowed and append-only
detectors and reports detection latency. Artifacts go to ``--outdir``.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import signal
import sys
import threading
import time
from pathlib import Path

import numpy as np

from .datasets import make_jd_dataset, save_dataset
from .detectors import (
    DETECTOR_NAMES,
    Detection,
    DetectorContext,
    available_detectors,
    detector_info,
    make_detector,
    split_detector_specs,
)
from .ensemble import (
    DetectionResult,
    EnsemFDet,
    EnsemFDetConfig,
    IncrementalEnsemFDet,
    state_backup_path,
)
from .experiments.runner import main as experiments_main
from .fdet import FdetConfig, PeelEngine
from .graph import (
    EdgeBatch,
    GraphAccumulator,
    WindowConfig,
    describe,
    iter_edge_batches,
    load_edge_list,
)
from .graph.io import _iter_rows
from .parallel import ExecutorMode, FaultTolerance
from .sampling import RandomEdgeSampler, StableEdgeSampler
from .scenarios import (
    SCENARIO_NAMES,
    DriftGridConfig,
    ScenarioGridConfig,
    run_drift_grid,
    run_grid,
    scenario_descriptions,
)
from .scenarios.drift import TEMPORAL_SCENARIOS

__all__ = ["main"]


def _default_threshold(threshold: int | None, n_samples: int) -> int:
    """Resolve the voting threshold, defaulting to ``N // 4``.

    Only ``None`` triggers the default — an explicit ``--threshold 0`` must
    reach the aggregator (which rejects it) instead of being silently
    replaced.
    """
    if threshold is None:
        return max(1, n_samples // 4)
    return threshold


def _print_detection(detection: DetectionResult, header: str) -> None:
    print(header)
    print(f"# detected {detection.n_users} users, {detection.n_merchants} merchants")
    for label in detection.user_labels.tolist():
        print(f"user\t{label}")
    for label in detection.merchant_labels.tolist():
        print(f"merchant\t{label}")


def _print_ranking(detection: Detection, top: int) -> None:
    """Print a registry detector's suspiciousness ranking."""
    ranking = detection.top_users(top)
    print(
        f"# {detection.spec}: fitted {detection.n_users} users in "
        f"{detection.seconds:.3f}s"
    )
    if "sampler" in detection.meta:
        # the registry's ensemble default (stable-edge) differs from the
        # legacy 'detect' path (random-edge); always show which one ran
        print(f"# sampler: {detection.meta['sampler']}")
    print(f"# top {ranking.size} users by suspiciousness (score after label)")
    score_of = dict(
        zip(detection.user_labels.tolist(), detection.user_scores.tolist())
    )
    for label in ranking.tolist():
        print(f"user\t{label}\t{score_of.get(label, 0.0):g}")


def _cmd_detect(args: argparse.Namespace) -> int:
    if args.detector is not None and args.threshold is not None:
        # never silently drop an explicit flag (same contract the legacy
        # path honours for --threshold 0); checked before any file I/O
        print(
            "--threshold has no effect with --detector (the registry path "
            "prints a score ranking); drop one of the two flags",
            file=sys.stderr,
        )
        return 2
    graph = load_edge_list(args.edges)
    if args.detector is not None:
        context = DetectorContext(
            seed=args.seed,
            n_samples=args.samples,
            sample_ratio=args.ratio,
            max_blocks=args.max_blocks,
            engine=args.engine,
            executor=args.executor,
            shared_memory=not args.no_shm,
        )
        detection = make_detector(args.detector, context).fit(graph)
        _print_ranking(detection, args.top)
        return 0
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(args.ratio),
        n_samples=args.samples,
        fdet=FdetConfig(max_blocks=args.max_blocks, engine=args.engine),
        executor=args.executor,
        seed=args.seed,
        shared_memory=not args.no_shm,
        shards=args.shards,
        mmap=args.mmap,
    )
    result = EnsemFDet(config).fit(graph)
    threshold = _default_threshold(args.threshold, args.samples)
    detection = result.detect(threshold)
    _print_detection(
        detection, f"# EnsemFDet: S={args.ratio} N={args.samples} T={threshold}"
    )
    return 0


def _headerless_batch(path: str) -> EdgeBatch:
    """Parse a bare ``u<TAB>v[<TAB>w]`` file (no ``# bipartite`` header).

    Weightedness is decided by the first data row's column count; row
    parsing is shared with the standard loaders (``_iter_rows``), so
    malformed rows fail with the same ``GraphError`` + line context.
    """
    weighted = False
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            weighted = len(line.split("\t")) >= 3
            break
    users: list[int] = []
    merchants: list[int] = []
    weights: list[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for user, merchant, weight in _iter_rows(fh, Path(path), weighted, start_line=1):
            users.append(user)
            merchants.append(merchant)
            weights.append(weight)
    return EdgeBatch(
        users=np.array(users, dtype=np.int64),
        merchants=np.array(merchants, dtype=np.int64),
        weights=np.array(weights, dtype=np.float64) if weighted else None,
    )


def _read_rows(
    path: str, skip: int = 0, headerless_ok: bool = False
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Data rows of an edge-list TSV after the first ``skip`` rows.

    Streams in chunks (constant memory beyond the returned delta) and never
    trusts the header's ``edges=`` count — the file may legitimately be
    mid-append. With ``headerless_ok``, a bare ``u<TAB>v[<TAB>w]`` file
    (no ``# bipartite`` header) is accepted too, as produced by ad-hoc
    delta exports.
    """
    users: list[np.ndarray] = []
    merchants: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    weighted = False

    def _batches():
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline()
        if headerless_ok and not first.startswith("# bipartite"):
            yield _headerless_batch(path)
            return
        # missing headers fail here with the reader's usual error
        yield from iter_edge_batches(path, strict=False)

    seen = 0
    for batch in _batches():
        size = batch.n_edges
        if seen + size <= skip:
            seen += size
            continue
        offset = max(0, skip - seen)
        users.append(batch.users[offset:])
        merchants.append(batch.merchants[offset:])
        if batch.weights is not None:
            weighted = True
            weights.append(batch.weights[offset:])
        seen += size

    if not users:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), None
    return (
        np.concatenate(users),
        np.concatenate(merchants),
        np.concatenate(weights) if weighted else None,
    )


def _state_exists(state_path: Path) -> bool:
    """True when a snapshot *or* its rolling backup is on disk.

    A crash between backup rotation and commit can leave only the ``.bak``
    behind — that is still resumable state, not a cold start.
    """
    return state_path.exists() or state_backup_path(state_path).exists()


def _load_state(state_path: Path) -> IncrementalEnsemFDet:
    """Load saved state, auto-recovering from the ``.bak`` snapshot."""
    detector, recovered_from = IncrementalEnsemFDet.load_with_recovery(state_path)
    if recovered_from is not None:
        print(
            f"# warning: {state_path} was corrupt or missing; recovered from "
            f"{recovered_from} (changes after that snapshot will be re-applied "
            "from the source file)",
            file=sys.stderr,
        )
    return detector


def _report_degradation(report) -> None:
    """Warn on stderr when an update left members with stale votes."""
    if report.failed_members:
        kinds = ", ".join(
            f"member {f.index}: {f.kind} after {f.attempts} attempt(s)"
            for f in report.failed_members
        )
        print(f"# warning: degraded update — {kinds}", file=sys.stderr)
    if report.stale_members:
        print(
            f"# warning: {len(report.stale_members)} member(s) carry stale "
            f"votes: {list(report.stale_members)}",
            file=sys.stderr,
        )


def _window_config(args: argparse.Namespace) -> WindowConfig | None:
    """Build the rolling-window config from ``--window`` / ``--horizon``."""
    if args.window is None and args.horizon is None:
        return None
    return WindowConfig(max_batches=args.window, horizon=args.horizon)


def _describe_window(detector: IncrementalEnsemFDet) -> str:
    window = detector.window_config
    if window is None:
        return "append-only"
    parts = []
    if window.max_batches is not None:
        parts.append(f"last {window.max_batches} batches")
    if window.horizon is not None:
        parts.append(f"horizon {window.horizon:g}")
    return f"rolling window ({', '.join(parts)})"


def _bootstrap_state(
    args: argparse.Namespace, state_path: Path
) -> tuple[IncrementalEnsemFDet, int]:
    """Load saved state or cold-fit from the edge file (watch/serve shared).

    Returns the warm detector and the number of source-file rows already
    folded into it (the resume offset for incremental polling).
    """
    if _state_exists(state_path):
        detector = _load_state(state_path)
        # the state may hold more edges than this file contributed (e.g.
        # deltas applied via 'ensemfdet update'), so the file offset is
        # tracked separately in the state's meta, not inferred from |E|
        consumed = int(detector.meta.get("watch_rows", detector.graph.n_edges))
        sampler = detector.config.sampler
        print(
            f"# loaded state from {state_path}: {detector.graph.n_edges} live edges, "
            f"N={detector.config.n_samples} S={sampler.ratio} stripe={sampler.stripe} "
            f"seed={detector.config.seed} {_describe_window(detector)} "
            f"({consumed} rows of {args.edges} consumed)"
        )
        print(
            "# note: ensemble/sampling/window flags on the command line are ignored — "
            "the stored configuration governs; delete the state file to refit"
        )
        return detector, consumed
    users, merchants, weights = _read_rows(args.edges)
    accumulator = GraphAccumulator()
    accumulator.append(users, merchants, weights)
    graph = accumulator.graph()
    config = EnsemFDetConfig(
        sampler=StableEdgeSampler(args.ratio, stripe=args.stripe),
        n_samples=args.samples,
        fdet=FdetConfig(max_blocks=args.max_blocks, engine=args.engine),
        executor=args.executor,
        seed=args.seed,
        shared_memory=not args.no_shm,
        shards=args.shards,
        mmap=args.mmap,
        tolerance=FaultTolerance(
            member_timeout=args.member_timeout,
            max_retries=args.max_retries,
            min_quorum=args.min_quorum,
        ),
    )
    window = _window_config(args)
    detector = IncrementalEnsemFDet(config, window=window)
    if window is not None and window.horizon is not None:
        # horizon windows expire by clock; stamp batch 0 with real time
        detector.fit(graph, timestamp=time.time())
    else:
        detector.fit(graph)
    consumed = graph.n_edges
    detector.meta["watch_rows"] = consumed
    detector.save(state_path)
    print(
        f"# cold fit on {graph.n_edges} edges ({_describe_window(detector)}); "
        f"state saved to {state_path}"
    )
    return detector, consumed


class _ShutdownGuard:
    """Turn SIGINT/SIGTERM into a flag instead of a mid-commit exception.

    The ``watch`` poll loop used to sit in a bare ``time.sleep`` — a
    SIGINT there raised ``KeyboardInterrupt`` (and a SIGTERM killed the
    process outright) anywhere between an update and its state commit,
    losing the delta. The guard installs handlers that only set an event;
    the loop finishes its current round, commits state, and exits 0.

    Handlers can only be installed from the main thread (``signal``'s
    rule); elsewhere — e.g. in-process tests driving ``main()`` from a
    worker thread — the guard degrades to a plain never-set flag.
    Previous handlers are restored on exit so embedding callers keep
    their own signal behaviour.
    """

    def __init__(self) -> None:
        self._stop = threading.Event()
        self._previous: dict[int, object] = {}

    def __enter__(self) -> "_ShutdownGuard":
        if threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[sig] = signal.signal(sig, self._handle)
                except (ValueError, OSError):  # pragma: no cover - exotic hosts
                    pass
        return self

    def __exit__(self, *exc_info) -> None:
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        self._previous.clear()

    def _handle(self, signum, frame) -> None:
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()

    def wait(self, seconds: float) -> bool:
        """Sleep up to ``seconds``; ``True`` when shutdown was requested."""
        return self._stop.wait(seconds)


def _cmd_watch(args: argparse.Namespace) -> int:
    state_path = Path(args.state)
    # the guard covers the bootstrap too: a signal during the cold fit
    # still drains into a clean commit instead of a traceback
    with _ShutdownGuard() as guard:
        detector, consumed = _bootstrap_state(args, state_path)

        threshold = _default_threshold(args.threshold, detector.config.n_samples)
        _print_detection(detector.detect(threshold), f"# EnsemFDet[warm] T={threshold}")

        rounds = 0
        while not guard.stop_requested and (
            args.iterations < 0 or rounds < args.iterations
        ):
            rounds += 1
            if args.interval > 0 and guard.wait(args.interval):
                break
            if guard.stop_requested:
                break
            users, merchants, weights = _read_rows(args.edges, skip=consumed)
            if not users.size:
                continue
            window = detector.window_config
            if window is not None and window.horizon is not None:
                report = detector.update(users, merchants, weights, timestamp=time.time())
            else:
                # batch-count windows tick in ordinal time (the accumulator's
                # default); append-only detectors reject timestamps outright
                report = detector.update(users, merchants, weights)
            _report_degradation(report)
            consumed += report.n_new_edges
            detector.meta["watch_rows"] = consumed
            detector.save(state_path)
            expired = f", expired {report.n_expired_edges}" if window is not None else ""
            print(
                f"# update: +{report.n_new_edges} edges{expired}, refreshed "
                f"{report.n_refreshed}/{report.n_samples} samples in "
                f"{report.total_seconds:.3f}s"
            )
            _print_detection(
                detector.detect(threshold), f"# EnsemFDet[warm] T={threshold}"
            )
        if guard.stop_requested:
            detector.meta["watch_rows"] = consumed
            detector.save(state_path)
            print(f"# interrupted: state committed to {state_path}", file=sys.stderr)
    return 0


async def _serve_until_signal(server, ready_message: str) -> None:
    """Run the scoring server until SIGINT/SIGTERM (or forever without them)."""
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-main thread
            pass
    try:
        await server.start()
        # the bound port on stdout is the readiness handshake for
        # subprocess tests and the serve-smoke CI job (--port 0 support)
        print(ready_message.format(host=server.host, port=server.port), flush=True)
        await stop.wait()
        await server.stop()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import DetectionService, ScoringServer

    state_path = Path(args.state)
    detector, consumed = _bootstrap_state(args, state_path)
    detector.meta["watch_rows"] = consumed
    threshold = _default_threshold(args.threshold, detector.config.n_samples)
    service = DetectionService(
        detector, state_path=state_path, default_threshold=threshold
    )
    server = ScoringServer(service, host=args.host, port=args.port)
    try:
        asyncio.run(
            _serve_until_signal(server, "# serving on http://{host}:{port}")
        )
    finally:
        service.close(save=not args.no_save_on_exit)
    print(
        f"# shutdown: state {'committed to ' + str(state_path) if not args.no_save_on_exit else 'not saved (--no-save-on-exit)'}",
        file=sys.stderr,
    )
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    state_path = Path(args.state)
    if not _state_exists(state_path):
        print(f"no detection state at {state_path}; run 'ensemfdet watch' first", file=sys.stderr)
        return 2
    if args.delta is None and args.remove is None:
        print("nothing to apply: give a delta file and/or --remove", file=sys.stderr)
        return 2
    detector = _load_state(state_path)
    windowed = detector.window_config is not None
    if not windowed and (args.remove is not None or args.timestamp is not None):
        print(
            "--remove/--timestamp need windowed state; refit with "
            "'ensemfdet watch --window N' (or --horizon H) first",
            file=sys.stderr,
        )
        return 2
    if args.delta is not None:
        users, merchants, weights = _read_rows(args.delta, headerless_ok=True)
    else:
        users = merchants = weights = None
    remove_users = remove_merchants = None
    if args.remove is not None:
        remove_users, remove_merchants, _ = _read_rows(args.remove, headerless_ok=True)
    if windowed:
        report = detector.update(
            users,
            merchants,
            weights,
            remove_users=remove_users,
            remove_merchants=remove_merchants,
            timestamp=args.timestamp,
        )
    else:
        report = detector.update(users, merchants, weights)
    _report_degradation(report)
    detector.save(state_path)
    threshold = _default_threshold(args.threshold, detector.config.n_samples)
    churn = ""
    if windowed:
        churn = f", -{report.n_removed_edges} retracted, {report.n_expired_edges} expired"
    print(
        f"# update: +{report.n_new_edges} edges{churn}, refreshed "
        f"{report.n_refreshed}/{report.n_samples} samples in {report.total_seconds:.3f}s"
    )
    _print_detection(detector.detect(threshold), f"# EnsemFDet[warm] T={threshold}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    dataset = make_jd_dataset(args.index, scale=args.scale, seed=args.seed)
    save_dataset(dataset, args.outdir)
    print(
        f"wrote {dataset.name} to {args.outdir}: "
        f"{dataset.graph.n_users} users, {dataset.graph.n_merchants} merchants, "
        f"{dataset.graph.n_edges} edges, {dataset.n_blacklisted} blacklisted"
    )
    return 0


def _parse_csv(raw: str, cast) -> tuple:
    """Split a ``--flag a,b,c`` value into a tuple of ``cast``ed items."""
    return tuple(cast(item.strip()) for item in raw.split(",") if item.strip())


def _cmd_detectors(args: argparse.Namespace) -> int:
    """List the detector registry: spec parameters and capabilities."""
    # available_detectors(), not the frozen DETECTOR_NAMES tuple, so
    # downstream register_detector() additions show up here too
    for name in available_detectors():
        info = detector_info(name)
        params = ", ".join(
            spec_field.name for spec_field in dataclasses.fields(info.spec_cls)
        )
        flags = []
        if info.streaming:
            flags.append("streaming")
        if info.parity:
            flags.append(f"parity={info.parity}")
        print(
            f"{name}\t{info.description}\n"
            f"\tparams: {params or '(none)'}\n"
            f"\tcapabilities: {', '.join(flags) or '(none)'}"
        )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.list:
        for name, description in scenario_descriptions().items():
            print(f"{name}\t{description}")
        return 0
    if args.drift:
        return _run_drift(args)
    scenarios = (
        _parse_csv(args.scenarios, str) if args.scenarios else SCENARIO_NAMES
    )
    config = ScenarioGridConfig(
        scenarios=scenarios,
        intensities=_parse_csv(args.intensities or "0.5,1.0,2.0", float),
        detectors=tuple(split_detector_specs(args.detectors)),
        scale=args.scale,
        seed=args.seed,
        n_samples=args.samples,
        sample_ratio=args.ratio,
        stripe=args.stripe,
        max_blocks=args.max_blocks,
        engine=args.engine,
        executor=args.executor,
        precision_k=args.k,
    )
    result = run_grid(config, outdir=args.outdir)
    print(result.render(max_rows=args.max_rows))
    if args.outdir is not None:
        print(f"# artifacts written to {args.outdir}/scenario_grid.{{json,csv}}")
    return 0


def _run_drift(args: argparse.Namespace) -> int:
    """``scenario --drift``: the temporal latency/decay grid."""
    intensities = _parse_csv(args.intensities, float) if args.intensities else (1.0,)
    if len(intensities) != 1:
        print(
            "--drift replays one intensity per run; pass a single value "
            f"to --intensities, got {list(intensities)}",
            file=sys.stderr,
        )
        return 2
    config = DriftGridConfig(
        scenarios=(
            _parse_csv(args.scenarios, str) if args.scenarios else TEMPORAL_SCENARIOS
        ),
        window_batches=args.window,
        intensity=intensities[0],
        scale=args.scale,
        seed=args.seed,
        n_samples=args.samples,
        sample_ratio=args.ratio,
        stripe=args.stripe,
        max_blocks=args.max_blocks,
        engine=args.engine,
        executor=args.executor,
        f1_target=args.f1_target,
    )
    result = run_drift_grid(config, outdir=args.outdir)
    print(result.render(max_rows=args.max_rows))
    if args.outdir is not None:
        print(f"# artifacts written to {args.outdir}/drift_grid.{{json,csv}}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.edges)
    for key, value in describe(graph).as_row().items():
        print(f"{key}\t{value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (also installed as the ``ensemfdet`` script)."""
    parser = argparse.ArgumentParser(prog="ensemfdet", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="run a detector on an edge-list TSV")
    detect.add_argument("edges")
    detect.add_argument(
        "--detector",
        default=None,
        help="registry spec to run instead of the default ensemble, e.g. "
        "'fraudar:n_blocks=8' or 'degree:weighted=1' (see 'ensemfdet detectors'); "
        "note the registry's ensemble defaults to the stable-edge sampler — "
        "pass 'ensemfdet:sampler=res' for the legacy random-edge behaviour",
    )
    detect.add_argument(
        "--top",
        type=int,
        default=50,
        help="ranked users printed with --detector",
    )
    detect.add_argument("--ratio", type=float, default=0.2, help="sample ratio S")
    detect.add_argument("--samples", type=int, default=40, help="ensemble size N")
    detect.add_argument("--threshold", type=int, default=None, help="voting threshold T")
    detect.add_argument("--max-blocks", type=int, default=15)
    detect.add_argument(
        "--engine",
        choices=PeelEngine.ALL,
        default=PeelEngine.DEFAULT,
        help="peeling backend: 'fast' (vectorised + native core) or 'reference'",
    )
    detect.add_argument("--executor", choices=("serial", "thread", "process"), default="process")
    detect.add_argument("--seed", type=int, default=0)
    detect.add_argument(
        "--no-shm",
        action="store_true",
        help="ship the graph store to process workers by pickle instead of "
        "publishing one shared-memory segment",
    )
    detect.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run the ensemble in K stripe shards, each over a store holding "
        "only the edges its members sample (vote table is bitwise-identical)",
    )
    detect.add_argument(
        "--mmap",
        action="store_true",
        help="spill graph stores to mmap-backed files so workers read columns "
        "lazily instead of copying them (out-of-core operation)",
    )
    detect.set_defaults(func=_cmd_detect)

    detectors = sub.add_parser(
        "detectors", help="list the detector registry (specs, params, capabilities)"
    )
    detectors.add_argument(
        "--list",
        action="store_true",
        help="accepted for symmetry with 'scenario --list'; listing is this "
        "subcommand's only mode",
    )
    detectors.set_defaults(func=_cmd_detectors)

    def _add_state_fit_flags(command: argparse.ArgumentParser) -> None:
        """The flags shared by every warm-state front end (watch, serve)."""
        command.add_argument("edges", help="edge-list TSV the state is fitted from")
        command.add_argument(
            "--state", required=True, help="detection-state .npz (created if missing)"
        )
        command.add_argument("--ratio", type=float, default=0.1, help="sample ratio S")
        command.add_argument("--samples", type=int, default=40, help="ensemble size N")
        command.add_argument(
            "--threshold", type=int, default=None, help="voting threshold T"
        )
        command.add_argument(
            "--stripe", type=int, default=1024, help="edges per sampling stripe"
        )
        command.add_argument("--max-blocks", type=int, default=15)
        command.add_argument(
            "--engine",
            choices=PeelEngine.ALL,
            default=PeelEngine.DEFAULT,
            help="peeling backend",
        )
        command.add_argument(
            "--executor", choices=("serial", "thread", "process"), default="process"
        )
        command.add_argument("--seed", type=int, default=0)
        command.add_argument(
            "--no-shm",
            action="store_true",
            help="disable the shared-memory graph segment for process workers",
        )
        command.add_argument(
            "--shards",
            type=int,
            default=1,
            help="cold-fit the ensemble in K stripe shards (stored in the state)",
        )
        command.add_argument(
            "--mmap",
            action="store_true",
            help="spill graph stores to mmap-backed files for process workers "
            "(stored in the state; updates reuse it)",
        )
        command.add_argument(
            "--member-timeout",
            type=float,
            default=None,
            help="wall-clock budget per ensemble member in seconds "
            "(cold fit only; stored in the state)",
        )
        command.add_argument(
            "--max-retries",
            type=int,
            default=2,
            help="retry rounds for failed ensemble members (cold fit only)",
        )
        command.add_argument(
            "--min-quorum",
            type=float,
            default=0.5,
            help="minimum surviving ensemble fraction before a fit/update "
            "raises instead of degrading (cold fit only)",
        )
        command.add_argument(
            "--window",
            type=int,
            default=None,
            metavar="N",
            help="keep only the last N appended batches live; older edges "
            "expire and their votes are forgotten (cold fit only; stored in "
            "the state and honoured by every later update)",
        )
        command.add_argument(
            "--horizon",
            type=float,
            default=None,
            metavar="H",
            help="expire edges whose batch timestamp falls more than H behind "
            "the newest batch (wall-clock seconds here; combinable with "
            "--window, cold fit only)",
        )

    watch = sub.add_parser(
        "watch",
        help="keep warm detection state and incrementally re-detect as the edge file grows",
    )
    _add_state_fit_flags(watch)
    watch.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls of the edge file"
    )
    watch.add_argument(
        "--iterations",
        type=int,
        default=-1,
        help="poll rounds before exiting (-1 = watch forever, 0 = fit/print once)",
    )
    watch.set_defaults(func=_cmd_watch)

    serve = sub.add_parser(
        "serve",
        help="serve the warm detection state over HTTP (scores, ingest, snapshots)",
        description="Long-running scoring service over the same DetectionState "
        "the watch/update commands maintain. Edge deltas arrive as POST "
        "/ingest requests (JSON; deletions and timestamps on windowed "
        "state); GET /score/{user}, /top, /blocks, /health and /stats "
        "answer from an immutable snapshot of the vote table, so reads "
        "never block behind a re-fit; POST /snapshot persists the state "
        "through the crash-safe commit path. SIGINT/SIGTERM drain the "
        "update queue, commit state, and exit 0.",
    )
    _add_state_fit_flags(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8787,
        help="TCP port (0 = ephemeral; the bound port is printed on stdout)",
    )
    serve.add_argument(
        "--no-save-on-exit",
        action="store_true",
        help="skip the final state commit on shutdown",
    )
    serve.set_defaults(func=_cmd_serve)

    update = sub.add_parser(
        "update", help="apply one edge-delta file to saved detection state"
    )
    update.add_argument(
        "delta",
        nargs="?",
        default=None,
        help="TSV of new edges (with or without the # bipartite header); "
        "optional when --remove is given",
    )
    update.add_argument("--state", required=True, help="detection-state .npz from 'watch'")
    update.add_argument("--threshold", type=int, default=None, help="voting threshold T")
    update.add_argument(
        "--remove",
        default=None,
        metavar="TSV",
        help="deletion delta: each (user, merchant) row retracts that "
        "pair's oldest live edge (windowed state only)",
    )
    update.add_argument(
        "--timestamp",
        type=float,
        default=None,
        help="batch timestamp for horizon windows (default: previous "
        "batch's timestamp + 1; windowed state only)",
    )
    update.set_defaults(func=_cmd_update)

    dataset = sub.add_parser("dataset", help="generate and save a JD-like dataset")
    dataset.add_argument("outdir")
    dataset.add_argument("--index", type=int, choices=(1, 2, 3), default=1)
    dataset.add_argument("--scale", type=float, default=0.3)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.set_defaults(func=_cmd_dataset)

    stats = sub.add_parser("stats", help="print statistics of an edge-list TSV")
    stats.add_argument("edges")
    stats.set_defaults(func=_cmd_stats)

    scenario = sub.add_parser(
        "scenario",
        help="sweep the adversarial-scenario robustness grid",
        description="Evaluate detectors against parameterized attack shapes "
        "(camouflage, hijacked accounts, staged waves, spray, skewed targets) "
        "across an intensity sweep; staged scenarios replay through the "
        "incremental/streaming path batch by batch.",
    )
    scenario.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    scenario.add_argument(
        "--drift",
        action="store_true",
        help="run the temporal drift grid instead: replay each scenario "
        "batch by batch through append-only and windowed detectors, "
        "reporting detection latency (batches until F1 reaches the "
        "target) and post-cleanup decay",
    )
    scenario.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: all registered; "
        f"with --drift: {','.join(TEMPORAL_SCENARIOS)})",
    )
    scenario.add_argument(
        "--intensities",
        default=None,
        help="comma-separated attack-strength multipliers (default "
        "0.5,1.0,2.0; --drift takes exactly one, default 1.0)",
    )
    scenario.add_argument(
        "--window",
        type=int,
        default=12,
        metavar="N",
        help="rolling-window size in batches for the --drift windowed rows",
    )
    scenario.add_argument(
        "--f1-target",
        type=float,
        default=0.6,
        help="best-F1 level that counts as 'detected' for --drift latency",
    )
    scenario.add_argument(
        "--detectors",
        default="ensemfdet,incremental",
        help="comma-separated detector registry specs, params allowed "
        f"(e.g. 'ensemfdet,fraudar:n_blocks=8'; available: {', '.join(DETECTOR_NAMES)})",
    )
    scenario.add_argument("--scale", type=float, default=0.5, help="world-size multiplier")
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--samples", type=int, default=16, help="ensemble size N")
    scenario.add_argument("--ratio", type=float, default=0.3, help="sample ratio S")
    scenario.add_argument("--stripe", type=int, default=64, help="edges per sampling stripe")
    scenario.add_argument("--max-blocks", type=int, default=10)
    scenario.add_argument(
        "--engine", choices=PeelEngine.ALL, default=PeelEngine.DEFAULT, help="peeling backend"
    )
    scenario.add_argument(
        "--executor",
        choices=(ExecutorMode.SERIAL, ExecutorMode.THREAD, ExecutorMode.PROCESS),
        default=ExecutorMode.SERIAL,
    )
    scenario.add_argument("--k", type=int, default=50, help="k of precision@k")
    scenario.add_argument("--outdir", default=None, help="write JSON/CSV artifacts here")
    scenario.add_argument("--max-rows", type=int, default=60, help="rows shown in the table")
    scenario.set_defaults(func=_cmd_scenario)

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures", add_help=False
    )
    experiments.add_argument("rest", nargs=argparse.REMAINDER)
    experiments.set_defaults(func=lambda a: experiments_main(a.rest))

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
