"""The serving concurrency core: one writer thread, wait-free readers.

:class:`DetectionService` owns a fitted
:class:`~repro.ensemble.IncrementalEnsemFDet` and enforces the service's
one invariant:

    **Reads never observe a partially-merged vote table.**

All mutations — ingest deltas, disk snapshots — are serialised through a
single worker thread (a one-slot :class:`~concurrent.futures.ThreadPoolExecutor`,
so callers get real futures to await). Each successful update captures a
fresh immutable :class:`~repro.serve.snapshot.ScoreSnapshot` and publishes
it with a single attribute store (atomic under the GIL); every read
answers from whatever snapshot reference it grabbed first. A failed
update (injected fault past the tolerance budget, quorum loss, bad delta)
publishes nothing — readers keep the pre-update view.

The fault layer's injection points fire unmodified inside the worker
thread (``member.detect`` during updates, ``state.write`` during
:meth:`save_state`), which is what lets chaos tests drive failures
through the HTTP path of a live server.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..ensemble import IncrementalEnsemFDet, UpdateReport
from ..errors import DetectionError
from .snapshot import ScoreSnapshot

__all__ = ["DetectionService", "ServiceStats"]


@dataclass(frozen=True)
class ServiceStats:
    """Monotonic counters of one service's lifetime (see ``GET /stats``)."""

    updates_applied: int
    updates_failed: int
    edges_ingested: int
    edges_retracted: int
    edges_expired: int
    members_refreshed: int
    snapshots_saved: int
    pending_jobs: int
    uptime_seconds: float

    def as_dict(self) -> dict:
        return {
            "updates_applied": self.updates_applied,
            "updates_failed": self.updates_failed,
            "edges_ingested": self.edges_ingested,
            "edges_retracted": self.edges_retracted,
            "edges_expired": self.edges_expired,
            "members_refreshed": self.members_refreshed,
            "snapshots_saved": self.snapshots_saved,
            "pending_jobs": self.pending_jobs,
            "uptime_seconds": self.uptime_seconds,
        }


def _as_delta_array(values, name: str) -> np.ndarray | None:
    """Validate one parallel delta column into an int64 array."""
    if values is None:
        return None
    array = np.asarray(values)
    if array.ndim != 1:
        raise DetectionError(f"ingest field {name!r} must be a flat array")
    if array.size and not np.issubdtype(array.dtype, np.number):
        raise DetectionError(f"ingest field {name!r} must be numeric labels")
    return array.astype(np.int64, copy=False)


class DetectionService:
    """Serialised updates + snapshot-isolated reads over a warm detector.

    Parameters
    ----------
    detector:
        A **fitted** :class:`~repro.ensemble.IncrementalEnsemFDet` (cold
        fit or loaded state). The service takes ownership: nothing else
        may mutate it while the service lives.
    state_path:
        Default target of :meth:`save_state` (``POST /snapshot``); also
        saved on :meth:`close` when set.
    default_threshold:
        MVA threshold used by reads that do not name one. Defaults to the
        ``watch`` CLI's ``max(1, N // 4)``.
    """

    def __init__(
        self,
        detector: IncrementalEnsemFDet,
        state_path: str | Path | None = None,
        default_threshold: int | None = None,
    ) -> None:
        if not detector.is_fitted:
            raise DetectionError(
                "DetectionService needs a fitted detector; call fit() or load() first"
            )
        self._detector = detector
        self.state_path = Path(state_path) if state_path is not None else None
        if default_threshold is None:
            default_threshold = max(1, detector.config.n_samples // 4)
        self._default_threshold = int(default_threshold)
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-writer"
        )
        self._closed = False
        self._started = time.monotonic()
        self._counter_lock = threading.Lock()
        self._updates_applied = 0
        self._updates_failed = 0
        self._edges_ingested = 0
        self._edges_retracted = 0
        self._edges_expired = 0
        self._members_refreshed = 0
        self._snapshots_saved = 0
        self._pending = 0
        # version 1 = the state the service booted from
        self._snapshot = ScoreSnapshot.capture(detector, 1, self._default_threshold)

    # ------------------------------------------------------------------
    # reads (any thread, wait-free)
    # ------------------------------------------------------------------

    @property
    def snapshot(self) -> ScoreSnapshot:
        """The current immutable snapshot (atomic reference read)."""
        return self._snapshot

    @property
    def default_threshold(self) -> int:
        return self._default_threshold

    @property
    def windowed(self) -> bool:
        return self._detector.window_config is not None

    def stats(self) -> ServiceStats:
        with self._counter_lock:
            return ServiceStats(
                updates_applied=self._updates_applied,
                updates_failed=self._updates_failed,
                edges_ingested=self._edges_ingested,
                edges_retracted=self._edges_retracted,
                edges_expired=self._edges_expired,
                members_refreshed=self._members_refreshed,
                snapshots_saved=self._snapshots_saved,
                pending_jobs=self._pending,
                uptime_seconds=time.monotonic() - self._started,
            )

    def health(self) -> dict:
        """Liveness + degradation, cheap enough for an aggressive prober."""
        snapshot = self._snapshot
        degraded = bool(snapshot.stale_members)
        return {
            "status": "degraded" if degraded else "ok",
            "fitted": True,
            "n_samples": snapshot.n_samples,
            "stale_members": list(snapshot.stale_members),
            "snapshot_version": snapshot.version,
            "windowed": self.windowed,
            "uptime_seconds": time.monotonic() - self._started,
        }

    # ------------------------------------------------------------------
    # writes (serialised through the worker thread)
    # ------------------------------------------------------------------

    def submit_ingest(
        self,
        users=None,
        merchants=None,
        weights=None,
        *,
        remove_users=None,
        remove_merchants=None,
        timestamp: float | None = None,
    ) -> "Future[dict]":
        """Queue one edge delta; the future resolves to the report dict.

        Validation of array shapes happens in the caller's thread (bad
        requests fail fast, without occupying the writer); the update and
        the snapshot swap happen in the writer thread.
        """
        users = _as_delta_array(users, "users")
        merchants = _as_delta_array(merchants, "merchants")
        if (users is None) != (merchants is None):
            raise DetectionError("ingest needs users and merchants together")
        if users is not None and users.size != merchants.size:
            raise DetectionError(
                f"ingest column length mismatch: {users.size} users vs "
                f"{merchants.size} merchants"
            )
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if users is None or weights.shape != users.shape:
                raise DetectionError("weights must parallel users/merchants")
        remove_users = _as_delta_array(remove_users, "remove_users")
        remove_merchants = _as_delta_array(remove_merchants, "remove_merchants")
        if (remove_users is None) != (remove_merchants is None):
            raise DetectionError(
                "remove_users and remove_merchants must be given together"
            )
        if (
            remove_users is not None
            and remove_users.size != remove_merchants.size
        ):
            raise DetectionError(
                f"deletion column length mismatch: {remove_users.size} vs "
                f"{remove_merchants.size}"
            )
        if users is None and remove_users is None:
            raise DetectionError("nothing to apply: give edges and/or deletions")
        if not self.windowed:
            if remove_users is not None:
                raise DetectionError(
                    "deletion deltas need windowed state (serve with --window/--horizon)"
                )
            if timestamp is not None:
                raise DetectionError(
                    "batch timestamps need windowed state (serve with --window/--horizon)"
                )
        return self._submit(
            self._apply_ingest,
            users,
            merchants,
            weights,
            remove_users,
            remove_merchants,
            timestamp,
        )

    def ingest(self, *args, **kwargs) -> dict:
        """Synchronous :meth:`submit_ingest` (tests, benchmarks, scripts)."""
        return self.submit_ingest(*args, **kwargs).result()

    def submit_save_state(self, path: str | Path | None = None) -> "Future[dict]":
        """Queue a crash-safe state snapshot to disk."""
        if path is None:
            path = self.state_path
        if path is None:
            raise DetectionError(
                "no snapshot path: configure the service's state_path or pass one"
            )
        return self._submit(self._apply_save_state, Path(path))

    def save_state(self, path: str | Path | None = None) -> dict:
        """Synchronous :meth:`submit_save_state`."""
        return self.submit_save_state(path).result()

    def close(self, save: bool = True) -> None:
        """Drain queued jobs, optionally persist, and stop the worker."""
        if self._closed:
            return
        if save and self.state_path is not None:
            try:
                self.submit_save_state(self.state_path).result()
            finally:
                self._closed = True
                self._worker.shutdown(wait=True)
            return
        self._closed = True
        self._worker.shutdown(wait=True)

    # ------------------------------------------------------------------
    # worker-side
    # ------------------------------------------------------------------

    def _submit(self, fn, *args) -> "Future[dict]":
        if self._closed:
            raise DetectionError("service is closed")
        with self._counter_lock:
            self._pending += 1
        try:
            future = self._worker.submit(fn, *args)
        except BaseException:
            with self._counter_lock:
                self._pending -= 1
            raise
        future.add_done_callback(self._job_done)
        return future

    def _job_done(self, _future) -> None:
        with self._counter_lock:
            self._pending -= 1

    def _apply_ingest(
        self, users, merchants, weights, remove_users, remove_merchants, timestamp
    ) -> dict:
        detector = self._detector
        try:
            if self.windowed:
                report = detector.update(
                    users,
                    merchants,
                    weights,
                    remove_users=remove_users,
                    remove_merchants=remove_merchants,
                    timestamp=timestamp,
                )
            else:
                report = detector.update(users, merchants, weights)
        except BaseException:
            with self._counter_lock:
                self._updates_failed += 1
            raise
        # the swap is the isolation point: everything before this line is
        # invisible to readers, everything after is the complete new table
        snapshot = ScoreSnapshot.capture(
            detector, self._snapshot.version + 1, self._default_threshold
        )
        self._snapshot = snapshot
        with self._counter_lock:
            self._updates_applied += 1
            self._edges_ingested += report.n_new_edges
            self._edges_retracted += report.n_removed_edges
            self._edges_expired += report.n_expired_edges
            self._members_refreshed += report.n_refreshed
        return self._report_dict(report, snapshot.version)

    def _apply_save_state(self, path: Path) -> dict:
        self._detector.save(path)
        with self._counter_lock:
            self._snapshots_saved += 1
        return {
            "path": str(path),
            "snapshot_version": self._snapshot.version,
            "n_edges": self._snapshot.n_edges,
        }

    @staticmethod
    def _report_dict(report: UpdateReport, version: int) -> dict:
        payload = {
            "n_new_edges": report.n_new_edges,
            "n_removed_edges": report.n_removed_edges,
            "n_expired_edges": report.n_expired_edges,
            "n_refreshed": report.n_refreshed,
            "n_samples": report.n_samples,
            "refreshed_samples": list(report.refreshed_samples),
            "stale_members": list(report.stale_members),
            "seconds": report.total_seconds,
            "snapshot_version": version,
        }
        if report.failed_members:
            payload["failed_members"] = [
                {"index": f.index, "kind": f.kind, "attempts": f.attempts}
                for f in report.failed_members
            ]
        return payload
