"""Immutable score snapshots — the unit of reader/writer isolation.

A :class:`ScoreSnapshot` is captured from a fitted
:class:`~repro.ensemble.IncrementalEnsemFDet` *after* an update has fully
merged, and is never mutated afterwards: the vote maps are private copies
and the ranking is precomputed. The service swaps the current snapshot
reference atomically (a single attribute store), so a reader either sees
the complete pre-update table or the complete post-update one — never a
table with some members' votes subtracted but not yet re-added.

Scores are the raw MVA vote counts (``0`` for never-voted users), i.e.
exactly ``Detection.user_scores`` of the registry's ensemble adapters, so
a snapshot is bit-comparable against a cold
:meth:`~repro.ensemble.EnsemFDet.fit_window` on the same live graph.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..errors import DetectionError

__all__ = ["ScoreSnapshot"]


def _ranked(labels: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """Permutation ordering users by ``(-score, node index)``.

    The explicit index tie-break (the :class:`~repro.baselines.DegreeDetector`
    convention) keeps equal-score rankings deterministic across runs and
    independent of numpy's sort algorithm.
    """
    return np.lexsort((np.arange(labels.size), -scores))


@dataclass(frozen=True)
class ScoreSnapshot:
    """One immutable, fully-merged view of the live vote table.

    Attributes
    ----------
    version:
        Monotonically increasing swap counter (1 = the initial fit).
        Readers can detect that an update landed between two requests.
    n_samples:
        Configured ensemble size ``N`` (the vote-count ceiling).
    default_threshold:
        The MVA threshold ``T`` used when a request does not name one.
    user_votes, merchant_votes:
        Private ``label -> votes`` copies of the vote table.
    user_labels, user_scores:
        Every user of the snapshot graph in local-index order with its
        vote count (0 when never voted); parallel arrays.
    ranked_users, ranked_scores:
        All users ordered by ``(-score, node index)`` — the deterministic
        serving ranking behind ``GET /top``.
    stale_members:
        Ensemble members currently carrying stale votes (degraded mode).
    n_users, n_merchants, n_edges:
        Shape of the graph the table is synchronised with.
    watermark:
        Rolling-window append watermark (``None`` for append-only state).
    captured_at:
        ``time.time()`` at capture (stats/diagnostics only).
    """

    version: int
    n_samples: int
    default_threshold: int
    user_votes: dict[int, int]
    merchant_votes: dict[int, int]
    user_labels: np.ndarray
    user_scores: np.ndarray
    ranked_users: np.ndarray
    ranked_scores: np.ndarray
    stale_members: tuple[int, ...] = ()
    n_users: int = 0
    n_merchants: int = 0
    n_edges: int = 0
    watermark: int | None = None
    captured_at: float = field(default_factory=time.time)

    @classmethod
    def capture(
        cls, detector, version: int, default_threshold: int | None = None
    ) -> "ScoreSnapshot":
        """Snapshot a fitted :class:`~repro.ensemble.IncrementalEnsemFDet`.

        Must be called from the service's single writer thread (or any
        context where no update is concurrently merging): it reads the
        live, mutable vote table. Everything it keeps is copied.
        """
        table = detector.vote_table
        graph = detector.graph
        if default_threshold is None:
            default_threshold = max(1, detector.config.n_samples // 4)
        labels = graph.user_labels.copy()
        scores = np.zeros(labels.size, dtype=np.float64)
        if table.user_votes:
            votes = Counter(table.user_votes)
            # vectorised sorted-key lookup, same shape as the detector
            # adapters' _vote_scores (the voted set is usually small)
            keys = np.fromiter(votes.keys(), dtype=np.int64, count=len(votes))
            values = np.fromiter(votes.values(), dtype=np.float64, count=len(votes))
            order = np.argsort(keys)
            keys, values = keys[order], values[order]
            positions = np.clip(np.searchsorted(keys, labels), 0, keys.size - 1)
            hits = keys[positions] == labels
            scores[hits] = values[positions[hits]]
        else:
            votes = Counter()
        order = _ranked(labels, scores)
        watermark = None
        if detector.window_config is not None:
            watermark = int(detector.window().watermark)
        return cls(
            version=version,
            n_samples=detector.config.n_samples,
            default_threshold=int(default_threshold),
            user_votes={int(k): int(v) for k, v in votes.items()},
            merchant_votes={int(k): int(v) for k, v in table.merchant_votes.items()},
            user_labels=labels,
            user_scores=scores,
            ranked_users=labels[order],
            ranked_scores=scores[order],
            stale_members=detector.stale_members,
            n_users=graph.n_users,
            n_merchants=graph.n_merchants,
            n_edges=graph.n_edges,
            watermark=watermark,
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def score_of(self, label: int) -> float:
        """Vote count of one user label (0.0 when never voted)."""
        return float(self.user_votes.get(int(label), 0))

    def knows_user(self, label: int) -> bool:
        """Whether ``label`` is a user of the snapshot graph."""
        return bool(np.any(self.user_labels == int(label)))

    def top(self, k: int) -> list[tuple[int, float]]:
        """The ``k`` most suspicious ``(label, score)`` pairs.

        ``k`` is clamped to ``[0, n_users]``; ties are already broken by
        node index in the precomputed ranking.
        """
        k = max(0, min(int(k), self.ranked_users.size))
        return [
            (int(label), float(score))
            for label, score in zip(
                self.ranked_users[:k].tolist(), self.ranked_scores[:k].tolist()
            )
        ]

    def detection(self, threshold: int | None = None) -> tuple[list[int], list[int]]:
        """Sorted ``(users, merchants)`` labels with ``votes >= threshold``.

        Mirrors :meth:`IncrementalEnsemFDet.detect` (plain MVA on the live
        table — degraded members keep serving their stale votes).
        """
        if threshold is None:
            threshold = self.default_threshold
        threshold = int(threshold)
        if threshold < 1:
            raise DetectionError(f"voting threshold T must be >= 1, got {threshold}")
        users = sorted(k for k, v in self.user_votes.items() if v >= threshold)
        merchants = sorted(k for k, v in self.merchant_votes.items() if v >= threshold)
        return users, merchants

    def vote_fingerprint(self) -> tuple:
        """Canonical ``(user, merchant)`` vote tuples for bit-compares."""
        return (
            tuple(sorted(self.user_votes.items())),
            tuple(sorted(self.merchant_votes.items())),
        )
