"""Stdlib-only asyncio HTTP/1.1 front end for the detection service.

No web framework is baked into the container, and the API surface is six
JSON endpoints — so the server speaks just enough HTTP/1.1 itself:
request-line + headers, ``Content-Length`` bodies, keep-alive. Handlers
are synchronous and cheap (dict lookups against the current
:class:`~repro.serve.snapshot.ScoreSnapshot`); only the two write
endpoints await the service's writer thread, so a slow re-fit never
blocks the event loop or any concurrent read.

Routes
------
======  =============== ====================================================
method  path            answer
======  =============== ====================================================
POST    ``/ingest``     apply one edge delta, wait for the snapshot swap
GET     ``/score/{u}``  one user's live vote count
GET     ``/top?k=K``    the K most suspicious users (clamped, deterministic)
GET     ``/blocks``     MVA detection at ``?threshold=T`` (default N//4)
GET     ``/health``     liveness + degradation
GET     ``/stats``      counters, window state, queue depth
POST    ``/snapshot``   persist DetectionState via the crash-safe commit
======  =============== ====================================================

Error mapping: malformed requests and semantic misuse (append-only state
given deletions, bad thresholds) are 400 with a JSON ``error``; unknown
paths 404; wrong methods 405; anything that escapes the update path —
injected faults included — is a 500 whose body names the exception type,
and the pre-failure snapshot keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import parse_qs, urlsplit

from ..errors import DetectionError, QuorumError, ReproError, StateError
from ..logging_utils import get_logger
from .service import DetectionService

__all__ = ["ScoringServer", "ServerHandle", "start_server_in_thread"]

logger = get_logger("serve")

#: request-body ceiling — a 1M-edge JSON batch is ~20 MB; anything past
#: this is a client bug, not a bigger batch
MAX_BODY_BYTES = 256 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024


class _HttpError(Exception):
    """Internal: abort the request with ``status`` and a JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ScoringServer:
    """Asyncio HTTP server over one :class:`DetectionService`.

    ``port=0`` binds an ephemeral port; :attr:`port` holds the real one
    after :meth:`start`.
    """

    def __init__(
        self, service: DetectionService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("serving on http://%s:%d", self.host, self.port)

    async def serve_forever(self) -> None:
        await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                try:
                    status, payload = await self._dispatch(method, target, body)
                except _HttpError as exc:
                    status, payload = exc.status, {"error": str(exc)}
                except (QuorumError, StateError) as exc:
                    # these DetectionError subclasses are server-side
                    # failures (a lost update, a torn persist) — not the
                    # client's request being wrong
                    status, payload = 500, {
                        "error": str(exc),
                        "type": type(exc).__name__,
                    }
                except (DetectionError, ValueError) as exc:
                    status, payload = 400, {
                        "error": str(exc),
                        "type": type(exc).__name__,
                    }
                except ReproError as exc:
                    status, payload = 500, {
                        "error": str(exc),
                        "type": type(exc).__name__,
                    }
                except Exception as exc:  # noqa: BLE001 - the server must not die
                    logger.exception("unhandled error serving %s %s", method, target)
                    status, payload = 500, {
                        "error": str(exc),
                        "type": type(exc).__name__,
                    }
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client died
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` on a clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request head too large") from None
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line {lines[0]!r}") from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body of {length} bytes exceeds the limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: dict, keep_alive: bool
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    async def _dispatch(self, method: str, target: str, body: bytes):
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        if path == "/health":
            self._require(method, "GET")
            return 200, self.service.health()
        if path == "/stats":
            self._require(method, "GET")
            return 200, self._stats()
        if path == "/top":
            self._require(method, "GET")
            return 200, self._top(query)
        if path.startswith("/score/"):
            self._require(method, "GET")
            return 200, self._score(path[len("/score/"):])
        if path == "/blocks":
            self._require(method, "GET")
            return 200, self._blocks(query)
        if path == "/ingest":
            self._require(method, "POST")
            return 200, await self._ingest(self._json_body(body))
        if path == "/snapshot":
            self._require(method, "POST")
            return 200, await self._snapshot(self._json_body(body))
        raise _HttpError(404, f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected} for this endpoint, not {method}")

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    @staticmethod
    def _int_param(query: dict, name: str, default: int) -> int:
        raw = query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise _HttpError(400, f"query parameter {name!r} must be an integer") from None

    # ------------------------------------------------------------------
    # read endpoints (answer from the current snapshot only)
    # ------------------------------------------------------------------

    def _score(self, raw_label: str) -> dict:
        try:
            label = int(raw_label)
        except ValueError:
            raise _HttpError(400, f"user label must be an integer, got {raw_label!r}") from None
        snapshot = self.service.snapshot
        score = snapshot.score_of(label)
        return {
            "user": label,
            "score": score,
            "flagged": score >= snapshot.default_threshold,
            "threshold": snapshot.default_threshold,
            "known": snapshot.knows_user(label),
            "snapshot_version": snapshot.version,
        }

    def _top(self, query: dict) -> dict:
        snapshot = self.service.snapshot
        k = self._int_param(query, "k", 50)
        entries = snapshot.top(k)
        return {
            "k": len(entries),
            "users": [{"user": label, "score": score} for label, score in entries],
            "snapshot_version": snapshot.version,
        }

    def _blocks(self, query: dict) -> dict:
        snapshot = self.service.snapshot
        threshold = self._int_param(query, "threshold", snapshot.default_threshold)
        users, merchants = snapshot.detection(threshold)
        return {
            "threshold": threshold,
            "users": users,
            "merchants": merchants,
            "n_users": len(users),
            "n_merchants": len(merchants),
            "snapshot_version": snapshot.version,
        }

    def _stats(self) -> dict:
        snapshot = self.service.snapshot
        payload = self.service.stats().as_dict()
        payload.update(
            {
                "snapshot_version": snapshot.version,
                "n_users": snapshot.n_users,
                "n_merchants": snapshot.n_merchants,
                "n_edges": snapshot.n_edges,
                "n_samples": snapshot.n_samples,
                "default_threshold": snapshot.default_threshold,
                "stale_members": list(snapshot.stale_members),
                "windowed": self.service.windowed,
            }
        )
        if snapshot.watermark is not None:
            payload["watermark"] = snapshot.watermark
        return payload

    # ------------------------------------------------------------------
    # write endpoints (serialised through the service's writer thread)
    # ------------------------------------------------------------------

    async def _ingest(self, payload: dict) -> dict:
        known = {
            "users",
            "merchants",
            "weights",
            "remove_users",
            "remove_merchants",
            "timestamp",
        }
        unknown = set(payload) - known
        if unknown:
            raise _HttpError(400, f"unknown ingest fields {sorted(unknown)}")
        timestamp = payload.get("timestamp")
        if timestamp is not None:
            timestamp = float(timestamp)
        future = self.service.submit_ingest(
            payload.get("users"),
            payload.get("merchants"),
            payload.get("weights"),
            remove_users=payload.get("remove_users"),
            remove_merchants=payload.get("remove_merchants"),
            timestamp=timestamp,
        )
        return await asyncio.wrap_future(future)

    async def _snapshot(self, payload: dict) -> dict:
        unknown = set(payload) - {"path"}
        if unknown:
            raise _HttpError(400, f"unknown snapshot fields {sorted(unknown)}")
        future = self.service.submit_save_state(payload.get("path"))
        return await asyncio.wrap_future(future)


class ServerHandle:
    """A server running in a background thread (tests, benchmarks, CLI-less use).

    Use :func:`start_server_in_thread`; call :meth:`stop` when done.
    """

    def __init__(self, server: ScoringServer, loop, thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, close_service: bool = True, save: bool = False) -> None:
        """Stop accepting, drain the loop thread, optionally close the service."""
        asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(
            timeout=30
        )
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
        if close_service:
            self.server.service.close(save=save)


def start_server_in_thread(
    service: DetectionService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Boot a :class:`ScoringServer` on a daemon thread and wait until bound."""
    server = ScoringServer(service, host=host, port=port)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="serve-http", daemon=True)
    thread.start()
    if not started.wait(timeout=30):  # pragma: no cover - defensive
        raise DetectionError("HTTP server failed to start within 30s")
    return ServerHandle(server, loop, thread)
