"""Detection-as-a-service: a long-running scoring server.

The CLI ``watch`` loop answers "is user X suspicious right now" only at
its poll cadence, single-threaded, blocking every read behind a re-fit.
This package turns the warm :class:`~repro.ensemble.IncrementalEnsemFDet`
state into a **service**: a long-lived process that ingests edge deltas
and serves scores concurrently.

Three layers, importable separately:

:class:`ScoreSnapshot` (:mod:`repro.serve.snapshot`)
    An immutable point-in-time view of the live vote table: per-user
    scores, a precomputed deterministic ranking, and the MVA detection at
    any threshold. Snapshots are cheap value objects — readers hold one
    and can never observe a half-merged table.

:class:`DetectionService` (:mod:`repro.serve.service`)
    The concurrency core. All mutations (ingest deltas, state snapshots
    to disk) are serialised through one worker thread; every completed
    update atomically publishes a fresh :class:`ScoreSnapshot`, which is
    what every read answers from. Reader/writer isolation is therefore
    wait-free for readers: a ``GET`` never blocks on a re-fit.

:class:`ScoringServer` (:mod:`repro.serve.http`)
    A stdlib-only asyncio HTTP/1.1 front end::

        POST /ingest     append a timestamped edge batch (+ deletions)
        GET  /score/{u}  one user's live score
        GET  /top?k=K    the K most suspicious users
        GET  /blocks     the MVA detection at a threshold
        GET  /health     liveness + degradation state
        GET  /stats      window/quorum/throughput counters
        POST /snapshot   persist DetectionState (crash-safe commit path)

Wired into the CLI as ``ensemfdet serve``. The fault layer's injection
points (``state.write``, ``member.detect``) fire in-process, so chaos
tests can drive failures through the HTTP path unmodified.
"""

from .http import ScoringServer, start_server_in_thread
from .service import DetectionService, ServiceStats
from .snapshot import ScoreSnapshot

__all__ = [
    "DetectionService",
    "ScoreSnapshot",
    "ScoringServer",
    "ServiceStats",
    "start_server_in_thread",
]
