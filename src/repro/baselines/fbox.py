"""FBox (Shah et al., ICDM 2014) — SVD reconstruction-error baseline.

FBox's insight is adversarial: attacks *small enough in scale* are invisible
to the top-``k`` spectral components, so instead of looking **at** the top
components (SpokEn), look at what they fail to reconstruct. A node whose
adjacency row lies almost entirely outside the top-``k`` subspace — i.e.
whose *reconstructed degree* is far below what nodes of its actual degree
normally get — is suspicious.

Implementation: the rank-``k`` reconstruction of user ``i``'s row has norm
``‖U_k[i,:] · diag(σ)‖₂``. Users are bucketed by actual degree; within a
bucket, a user sitting in the bottom ``τ`` fraction of reconstructed norms
is flagged. Sweeping ``τ`` produces the PR curve of Fig. 3 (the paper finds
FBox unstable across datasets — which this reproduction also exhibits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg

from ..errors import DetectionError
from ..graph import BipartiteGraph, to_scipy
from .spoken import clamp_svd_rank, svd_start_vector

__all__ = ["FBoxDetector", "FBoxScores"]


@dataclass(frozen=True)
class FBoxScores:
    """Suspiciousness as within-degree-bucket reconstruction deficiency.

    ``user_scores[i] ∈ [0, 1]`` is ``1 − (percentile rank of user i's
    reconstructed norm among users of similar degree)`` — higher means the
    spectrum explains the user's behaviour *worse*, i.e. more suspicious.
    Users below ``min_degree`` score 0 (FBox does not judge near-silent
    accounts). ``n_components`` is the rank actually used, after clamping
    to what the matrix supports.
    """

    user_scores: np.ndarray
    reconstructed_norms: np.ndarray
    degrees: np.ndarray
    n_components: int = 0


class FBoxDetector:
    """Score users by how poorly the top-``k`` SVD reconstructs them.

    Parameters
    ----------
    n_components:
        Rank ``k`` of the truncated SVD.
    min_degree:
        Users with fewer purchases than this are never flagged.
    n_degree_buckets:
        Number of logarithmic degree buckets used for the percentile
        comparison.
    """

    def __init__(
        self,
        n_components: int = 25,
        min_degree: int = 2,
        n_degree_buckets: int = 20,
    ) -> None:
        if n_components < 1:
            raise DetectionError(f"n_components must be >= 1, got {n_components}")
        if min_degree < 0:
            raise DetectionError(f"min_degree must be >= 0, got {min_degree}")
        if n_degree_buckets < 1:
            raise DetectionError(f"n_degree_buckets must be >= 1, got {n_degree_buckets}")
        self.n_components = n_components
        self.min_degree = min_degree
        self.n_degree_buckets = n_degree_buckets

    def score(self, graph: BipartiteGraph) -> FBoxScores:
        """Compute reconstruction-deficiency scores for every user."""
        if graph.n_users < 2 or graph.n_merchants < 2:
            raise DetectionError("FBox needs at least a 2x2 adjacency matrix")
        matrix = to_scipy(graph, binary=True).astype(np.float64)
        k = clamp_svd_rank("fbox", self.n_components, matrix.shape)
        u, s, _ = scipy.sparse.linalg.svds(matrix, k=k, v0=svd_start_vector(matrix.shape))
        # ‖row_i reconstruction‖₂ = ‖U[i, :] · diag(σ)‖₂
        reconstructed = np.linalg.norm(u * s[np.newaxis, :], axis=1)
        degrees = graph.user_degrees().astype(np.float64)

        scores = np.zeros(graph.n_users, dtype=np.float64)
        eligible = degrees >= self.min_degree
        if eligible.any():
            max_degree = degrees[eligible].max()
            edges = np.logspace(
                np.log10(max(self.min_degree, 1)),
                np.log10(max(max_degree, self.min_degree + 1.0)),
                self.n_degree_buckets + 1,
            )
            bucket = np.clip(
                np.digitize(degrees, edges, right=True), 0, self.n_degree_buckets - 1
            )
            for b in range(self.n_degree_buckets):
                members = np.nonzero(eligible & (bucket == b))[0]
                if members.size == 0:
                    continue
                norms = reconstructed[members]
                # percentile rank within the bucket (average rank for ties)
                order = norms.argsort(kind="stable")
                ranks = np.empty(members.size, dtype=np.float64)
                ranks[order] = np.arange(members.size, dtype=np.float64)
                if members.size > 1:
                    ranks /= members.size - 1
                else:
                    ranks[:] = 1.0  # a singleton bucket cannot look anomalous
                scores[members] = 1.0 - ranks
        return FBoxScores(
            user_scores=scores,
            reconstructed_norms=reconstructed,
            degrees=degrees,
            n_components=int(s.size),
        )

    def score_users(self, graph: BipartiteGraph) -> np.ndarray:
        """User suspiciousness scores only (evaluation convenience)."""
        return self.score(graph).user_scores

    def detect_users(self, graph: BipartiteGraph, tau: float) -> np.ndarray:
        """Local user indices flagged at percentile threshold ``tau``."""
        if not 0.0 < tau <= 1.0:
            raise DetectionError(f"tau must be in (0, 1], got {tau}")
        scores = self.score(graph).user_scores
        return np.nonzero(scores >= 1.0 - tau)[0]
