"""SpokEn (Prakash et al., PAKDD 2010) — spectral "eigenspokes" baseline.

SpokEn observes that in the scatter plot of pairs of singular vectors of a
graph's adjacency matrix, tightly-knit communities show up as *spokes*:
groups of nodes with large coordinates on one axis and near-zero on the
other. Fraud rings — near-bipartite-cliques — concentrate mass on single
singular components.

Practical scoring (as the EnsemFDet paper uses it, with 25 components): a
user's suspiciousness is its largest absolute, per-component-normalised
coordinate across the top-``k`` left singular vectors. Sweeping a threshold
over this score yields the PR curves of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg

from ..errors import DetectionError
from ..graph import BipartiteGraph, to_scipy
from ..logging_utils import get_logger

__all__ = ["SpokenDetector", "SpokenScores", "clamp_svd_rank", "svd_start_vector"]

_LOG = get_logger("baselines")


def clamp_svd_rank(name: str, n_components: int, shape: tuple[int, int]) -> int:
    """The largest usable truncated-SVD rank for an ``m × n`` matrix.

    ``scipy.sparse.linalg.svds`` requires ``k < min(shape)``; asking for
    ``n_components >= min(n_users, n_merchants)`` (easy on tiny graphs)
    would otherwise die inside ARPACK. The clamp is logged so silent
    rank reductions do not masquerade as the configured setting.
    """
    max_rank = max(1, min(shape) - 1)
    if n_components > max_rank:
        _LOG.warning(
            "%s: clamping n_components from %d to %d for a %dx%d adjacency matrix",
            name,
            n_components,
            max_rank,
            shape[0],
            shape[1],
        )
        return max_rank
    return n_components


def svd_start_vector(shape: tuple[int, int]) -> np.ndarray:
    """A fixed ARPACK starting vector for reproducible truncated SVDs.

    ``scipy.sparse.linalg.svds`` seeds its iteration with a *random*
    vector by default, which makes the spectral baselines wiggle in the
    last few ULPs from run to run — enough to break bitwise-regression
    fixtures. A fixed (but generic, non-degenerate) starting vector makes
    the whole detector layer reproducible.
    """
    return np.random.default_rng(0).random(min(shape))


@dataclass(frozen=True)
class SpokenScores:
    """Continuous suspiciousness scores from the spectral projection."""

    user_scores: np.ndarray
    merchant_scores: np.ndarray
    n_components: int

    def top_users(self, n: int) -> np.ndarray:
        """Local indices of the ``n`` highest-scoring users."""
        n = min(n, self.user_scores.size)
        order = np.argsort(-self.user_scores, kind="stable")
        return order[:n]


class SpokenDetector:
    """Score nodes by their mass in the top-``k`` singular components.

    Parameters
    ----------
    n_components:
        Number of singular vector pairs to inspect (paper: 25). Clamped to
        the largest rank scipy can extract from the matrix.
    """

    def __init__(self, n_components: int = 25) -> None:
        if n_components < 1:
            raise DetectionError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components

    def _svd(self, graph: BipartiteGraph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        matrix = to_scipy(graph, binary=True).astype(np.float64)
        k = clamp_svd_rank("spoken", self.n_components, matrix.shape)
        u, s, vt = scipy.sparse.linalg.svds(matrix, k=k, v0=svd_start_vector(matrix.shape))
        order = np.argsort(-s)
        return u[:, order], s[order], vt[order, :]

    def score(self, graph: BipartiteGraph) -> SpokenScores:
        """Compute suspiciousness scores for every user and merchant.

        Each singular vector is normalised to unit infinity-norm so that
        components of different strength contribute comparably; a node's
        score is its maximum normalised coordinate over the components.
        """
        if graph.n_users < 2 or graph.n_merchants < 2:
            raise DetectionError("SpokEn needs at least a 2x2 adjacency matrix")
        u, s, vt = self._svd(graph)
        user_scores = np.zeros(graph.n_users, dtype=np.float64)
        merchant_scores = np.zeros(graph.n_merchants, dtype=np.float64)
        for j in range(s.size):
            left = np.abs(u[:, j])
            right = np.abs(vt[j, :])
            left_max = left.max() or 1.0
            right_max = right.max() or 1.0
            user_scores = np.maximum(user_scores, left / left_max)
            merchant_scores = np.maximum(merchant_scores, right / right_max)
        return SpokenScores(
            user_scores=user_scores,
            merchant_scores=merchant_scores,
            n_components=int(s.size),
        )

    def score_users(self, graph: BipartiteGraph) -> np.ndarray:
        """User suspiciousness scores only (evaluation convenience)."""
        return self.score(graph).user_scores
