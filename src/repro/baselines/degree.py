"""Naive degree baseline — sanity floor for every comparison.

Fraud rings make bulk purchases, so simply ranking users by purchase count is
the cheapest conceivable detector. Any graph-structure method that cannot
beat it is not extracting structure. Not part of the paper's comparison set;
included as an engineering control.
"""

from __future__ import annotations

import numpy as np

from ..graph import BipartiteGraph

__all__ = ["DegreeDetector"]


class DegreeDetector:
    """Rank users by (optionally weighted) degree."""

    def __init__(self, weighted: bool = False) -> None:
        self.weighted = bool(weighted)

    def score_users(self, graph: BipartiteGraph) -> np.ndarray:
        """Suspiciousness = number (or weight) of purchases."""
        if self.weighted:
            return graph.weighted_user_degrees()
        return graph.user_degrees().astype(np.float64)

    def top_users(self, graph: BipartiteGraph, n: int) -> np.ndarray:
        """Local indices of the ``n`` busiest users.

        Sorted on the explicit key ``(-score, node index)``: equal-degree
        users always rank in ascending index order, independent of the
        sort algorithm numpy happens to use for plain ``argsort``.
        """
        scores = self.score_users(graph)
        n = min(n, scores.size)
        order = np.lexsort((np.arange(scores.size), -scores))
        return order[:n]
