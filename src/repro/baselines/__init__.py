"""Comparison methods from the paper's evaluation (§V-B2)."""

from .degree import DegreeDetector
from .fbox import FBoxDetector, FBoxScores
from .fraudar import FraudarDetector, FraudarResult
from .spoken import SpokenDetector, SpokenScores

__all__ = [
    "FraudarDetector",
    "FraudarResult",
    "SpokenDetector",
    "SpokenScores",
    "FBoxDetector",
    "FBoxScores",
    "DegreeDetector",
]
