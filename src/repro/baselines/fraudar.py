"""Fraudar (Hooi et al., KDD 2016) — the strongest baseline in the paper.

Greedy densest-block detection on the **full** graph under the log-weighted
suspiciousness metric, extended (as in the paper's experiments, Table III)
to extract a fixed number ``K`` of blocks sequentially by removing each
detected block's edges and re-running the greedy.

Two properties matter for the reproduction:

* it is *sequential* — no sampling, no parallelism — so its wall-clock grows
  with the full graph (the Table-III comparison), and
* its operating points are the cumulative unions of whole blocks, whose
  sizes vary wildly — producing the discrete "polyline" curves of Fig. 4
  that motivate EnsemFDet's smooth threshold control.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DetectionError
from ..fdet.density import DensityMetric, LogWeightedDensity
from ..fdet.fdet import Block
from ..fdet.peeling import PeelEngine, greedy_peel
from ..graph import BipartiteGraph

__all__ = ["FraudarDetector", "FraudarResult"]


@dataclass(frozen=True)
class FraudarResult:
    """All blocks Fraudar extracted, in extraction (density) order."""

    blocks: tuple[Block, ...]

    def detected_users(self, n_blocks: int | None = None) -> np.ndarray:
        """Union of user labels over the first ``n_blocks`` blocks."""
        limit = len(self.blocks) if n_blocks is None else min(n_blocks, len(self.blocks))
        parts = [block.user_labels for block in self.blocks[:limit]]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def detected_merchants(self, n_blocks: int | None = None) -> np.ndarray:
        """Union of merchant labels over the first ``n_blocks`` blocks."""
        limit = len(self.blocks) if n_blocks is None else min(n_blocks, len(self.blocks))
        parts = [block.merchant_labels for block in self.blocks[:limit]]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def cumulative_detections(self) -> list[tuple[int, np.ndarray]]:
        """Operating points ``(blocks used, detected user labels)``.

        These are Fraudar's only available trade-off knob — the diamond
        points of the paper's Fig. 3/4.
        """
        points: list[tuple[int, np.ndarray]] = []
        for n_blocks in range(1, len(self.blocks) + 1):
            points.append((n_blocks, self.detected_users(n_blocks)))
        return points


class FraudarDetector:
    """Multi-block Fraudar.

    Parameters
    ----------
    n_blocks:
        How many dense blocks to extract (the paper fixes ``K = 30``).
    metric:
        Suspiciousness metric; defaults to the log-weighted density with the
        reference implementation's ``c = 5``.
    min_block_edges:
        Stop early when the next block would have fewer edges.
    engine:
        Peeling backend (see :class:`repro.fdet.PeelEngine`); both engines
        return identical blocks.
    """

    def __init__(
        self,
        n_blocks: int = 30,
        metric: DensityMetric | None = None,
        min_block_edges: int = 1,
        engine: str = PeelEngine.DEFAULT,
    ) -> None:
        if n_blocks < 1:
            raise DetectionError(f"n_blocks must be >= 1, got {n_blocks}")
        if min_block_edges < 1:
            raise DetectionError(f"min_block_edges must be >= 1, got {min_block_edges}")
        self.n_blocks = n_blocks
        self.metric = metric or LogWeightedDensity()
        self.min_block_edges = min_block_edges
        self.engine = engine

    def detect(self, graph: BipartiteGraph) -> FraudarResult:
        """Extract up to ``n_blocks`` dense blocks from the full graph."""
        blocks: list[Block] = []
        current = graph
        for index in range(self.n_blocks):
            if current.is_empty:
                break
            edge_weights = self.metric.edge_weights(current)
            peel = greedy_peel(
                current,
                edge_weights,
                user_weights=self.metric.user_weights(current),
                merchant_weights=self.metric.merchant_weights(current),
                engine=self.engine,
            )
            block_edges = peel.edge_indices(current)
            if block_edges.size < self.min_block_edges:
                break
            blocks.append(
                Block(
                    index=index,
                    user_labels=np.sort(current.user_labels[peel.user_mask]),
                    merchant_labels=np.sort(current.merchant_labels[peel.merchant_mask]),
                    density=peel.density,
                    n_edges=int(block_edges.size),
                )
            )
            current = current.remove_edges(block_edges)
        return FraudarResult(blocks=tuple(blocks))
