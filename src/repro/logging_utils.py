"""Small logging helpers shared across the library.

The library logs under the ``"repro"`` namespace and never configures the
root logger; applications opt in with :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager
from typing import Iterator

LOGGER_NAME = "repro"


def get_logger(suffix: str | None = None) -> logging.Logger:
    """Return the library logger, optionally namespaced by ``suffix``.

    >>> get_logger("fdet").name
    'repro.fdet'
    """
    if suffix:
        return logging.getLogger(f"{LOGGER_NAME}.{suffix}")
    return logging.getLogger(LOGGER_NAME)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the library logger (idempotent)."""
    logger = get_logger()
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)


@contextmanager
def log_duration(message: str, logger: logging.Logger | None = None) -> Iterator[None]:
    """Log ``message`` together with the wall-clock duration of the block."""
    log = logger or get_logger()
    start = time.perf_counter()
    try:
        yield
    finally:
        log.info("%s (%.3fs)", message, time.perf_counter() - start)
