"""Fraud-block injection — planting the signal the detectors must find.

The paper's two behavioural clues (§III-A) translate directly into planted
structure:

* **synchronized behaviour** — a fraud group is a batch of freshly-registered
  accounts all buying at the same small merchant set within the campaign
  window → a dense random bipartite block between *new* user nodes and a
  small merchant set;
* **rare behaviour** — that block's density far exceeds the background's.

Camouflage (fraudsters also buying from genuinely popular merchants to fool
rule systems) is modelled with extra edges from fraud users to
degree-weighted background merchants — exactly the adversarial setting the
log-weighted density score is built to resist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..graph import BipartiteGraph
from ..sampling import resolve_rng
from .blacklist import Blacklist

__all__ = ["FraudBlockSpec", "InjectionResult", "inject_fraud_blocks"]


@dataclass(frozen=True)
class FraudBlockSpec:
    """One fraud group to plant.

    Attributes
    ----------
    n_users:
        Fraudulent accounts in the group (all newly appended nodes).
    n_merchants:
        Merchants the group buys from.
    density:
        Probability of each (user, merchant) edge inside the block; the
        realised block is a dense random bipartite graph, denser than any
        background region but not a perfect clique (fraudsters stagger
        purchases).
    reuse_merchant_fraction:
        Fraction of the block's merchants drawn from existing background
        merchants (colluding shops) instead of newly created ones.
    camouflage_per_user:
        Extra edges per fraud user to popular background merchants.
    """

    n_users: int
    n_merchants: int
    density: float = 0.5
    reuse_merchant_fraction: float = 0.5
    camouflage_per_user: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_merchants < 1:
            raise DatasetError("fraud blocks need at least one user and one merchant")
        if not 0.0 < self.density <= 1.0:
            raise DatasetError(f"block density must be in (0, 1], got {self.density}")
        if not 0.0 <= self.reuse_merchant_fraction <= 1.0:
            raise DatasetError(
                f"reuse_merchant_fraction must be in [0, 1], got {self.reuse_merchant_fraction}"
            )
        if self.camouflage_per_user < 0:
            raise DatasetError("camouflage_per_user must be >= 0")


@dataclass(frozen=True)
class InjectionResult:
    """Graph with planted fraud plus the exact ground truth."""

    graph: BipartiteGraph
    blacklist: Blacklist
    fraud_user_labels: np.ndarray
    fraud_merchant_labels: np.ndarray
    block_user_labels: tuple[np.ndarray, ...]


def inject_fraud_blocks(
    background: BipartiteGraph,
    blocks: list[FraudBlockSpec],
    rng: np.random.Generator | int | None = None,
) -> InjectionResult:
    """Append fraud groups to a background graph.

    Fraud users are new nodes (labels continue after the background's);
    merchants are a mix of new nodes and existing ones per each block's
    ``reuse_merchant_fraction``. Returns the enlarged graph and a *clean*
    blacklist of exactly the planted fraud users (apply
    :meth:`Blacklist.with_noise` afterwards to model review noise).
    """
    generator = resolve_rng(rng)
    if not blocks:
        return InjectionResult(
            graph=background,
            blacklist=Blacklist([]),
            fraud_user_labels=np.empty(0, dtype=np.int64),
            fraud_merchant_labels=np.empty(0, dtype=np.int64),
            block_user_labels=(),
        )

    merchant_degrees = background.merchant_degrees().astype(np.float64)
    if merchant_degrees.sum() > 0:
        popularity = merchant_degrees / merchant_degrees.sum()
    else:
        popularity = None

    next_user = background.n_users
    next_merchant = background.n_merchants
    new_edge_users: list[np.ndarray] = []
    new_edge_merchants: list[np.ndarray] = []
    fraud_users: list[np.ndarray] = []
    fraud_merchants: list[np.ndarray] = []
    per_block_users: list[np.ndarray] = []

    for spec in blocks:
        block_users = np.arange(next_user, next_user + spec.n_users, dtype=np.int64)
        next_user += spec.n_users

        n_reused = int(round(spec.reuse_merchant_fraction * spec.n_merchants))
        n_reused = min(n_reused, background.n_merchants)
        n_new = spec.n_merchants - n_reused
        reused = (
            generator.choice(background.n_merchants, size=n_reused, replace=False)
            if n_reused
            else np.empty(0, dtype=np.int64)
        )
        created = np.arange(next_merchant, next_merchant + n_new, dtype=np.int64)
        next_merchant += n_new
        block_merchants = np.concatenate([reused, created]).astype(np.int64)

        # dense random bipartite block: Bernoulli(density) per pair, but
        # guarantee every fraud user makes at least one in-block purchase
        pair_mask = generator.random((spec.n_users, spec.n_merchants)) < spec.density
        silent = ~pair_mask.any(axis=1)
        if silent.any():
            pair_mask[silent, generator.integers(0, spec.n_merchants, size=int(silent.sum()))] = True
        block_u, block_m = np.nonzero(pair_mask)
        new_edge_users.append(block_users[block_u])
        new_edge_merchants.append(block_merchants[block_m])

        # camouflage purchases at popular background merchants
        if spec.camouflage_per_user and popularity is not None:
            n_camouflage = spec.n_users * spec.camouflage_per_user
            camo_merchants = generator.choice(
                background.n_merchants, size=n_camouflage, p=popularity
            )
            camo_users = np.repeat(block_users, spec.camouflage_per_user)
            new_edge_users.append(camo_users)
            new_edge_merchants.append(camo_merchants)

        fraud_users.append(block_users)
        fraud_merchants.append(block_merchants)
        per_block_users.append(block_users)

    edge_users = np.concatenate([background.edge_users] + new_edge_users)
    edge_merchants = np.concatenate([background.edge_merchants] + new_edge_merchants)
    graph = BipartiteGraph(
        n_users=next_user,
        n_merchants=next_merchant,
        edge_users=edge_users,
        edge_merchants=edge_merchants,
    )
    all_fraud_users = np.unique(np.concatenate(fraud_users))
    return InjectionResult(
        graph=graph,
        blacklist=Blacklist(all_fraud_users.tolist()),
        fraud_user_labels=all_fraud_users,
        fraud_merchant_labels=np.unique(np.concatenate(fraud_merchants)),
        block_user_labels=tuple(per_block_users),
    )
