"""Fraud-block injection — planting the signal the detectors must find.

The paper's two behavioural clues (§III-A) translate directly into planted
structure:

* **synchronized behaviour** — a fraud group is a batch of freshly-registered
  accounts all buying at the same small merchant set within the campaign
  window → a dense random bipartite block between *new* user nodes and a
  small merchant set;
* **rare behaviour** — that block's density far exceeds the background's.

Camouflage (fraudsters also buying from genuinely popular merchants to fool
rule systems) is modelled with extra edges from fraud users to
degree-weighted background merchants — exactly the adversarial setting the
log-weighted density score is built to resist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..graph import BipartiteGraph
from ..sampling import resolve_rng
from .blacklist import Blacklist

__all__ = [
    "FraudBlockSpec",
    "InjectionResult",
    "inject_fraud_blocks",
    "dense_block_pairs",
    "merchant_popularity",
    "require_integer",
    "require_density",
]

#: widest candidate-edge matrix a block may request (``n_users × n_merchants``).
#: The Bernoulli mask materialises one float per candidate pair, so a block
#: wider than any realistic item universe would only fail deep inside edge
#: generation with an allocation error; 2**27 cells (~1 GiB of mask) is far
#: beyond any sane fraud group while still failing fast at spec time.
MAX_BLOCK_CELLS = 2**27


def require_integer(value, name: str, error: type[Exception] = DatasetError) -> int:
    """Reject non-integers (incl. bools) with a clear error; return ``int``.

    Shared by the block specs here and the scenario generators — silently
    truncating ``n_waves=2.9`` would run a different experiment than the
    caller asked for.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise error(f"{name} must be an integer, got {value!r} ({type(value).__name__})")
    return int(value)


def require_density(value, error: type[Exception] = DatasetError) -> float:
    """Validate a Bernoulli block density lies in ``(0, 1]``."""
    if not 0.0 < value <= 1.0:
        raise error(f"density must be in (0, 1], got {value}")
    return float(value)


def dense_block_pairs(
    rng: np.random.Generator, n_users: int, n_merchants: int, density: float
) -> tuple[np.ndarray, np.ndarray]:
    """Local-index pairs of a Bernoulli(``density``) dense bipartite block.

    The canonical planted-signal idiom, shared by fraud injection and the
    adversarial scenario generators: one coin per (user, merchant) cell,
    then every silent user is given one purchase at a random block
    merchant — fraudsters stagger, but never sit out entirely. Consumes
    the RNG as one ``random((n_users, n_merchants))`` draw plus (only if
    needed) one ``integers`` draw.
    """
    pair_mask = rng.random((n_users, n_merchants)) < density
    silent = ~pair_mask.any(axis=1)
    if silent.any():
        pair_mask[silent, rng.integers(0, n_merchants, size=int(silent.sum()))] = True
    return np.nonzero(pair_mask)


def merchant_popularity(graph: BipartiteGraph) -> np.ndarray | None:
    """Degree-proportional choice weights over a graph's merchants.

    ``None`` when the graph has no edges (no popularity signal to target).
    """
    degrees = graph.merchant_degrees().astype(np.float64)
    total = degrees.sum()
    if total <= 0:
        return None
    return degrees / total


@dataclass(frozen=True)
class FraudBlockSpec:
    """One fraud group to plant.

    Attributes
    ----------
    n_users:
        Fraudulent accounts in the group (all newly appended nodes).
    n_merchants:
        Merchants the group buys from.
    density:
        Probability of each (user, merchant) edge inside the block; the
        realised block is a dense random bipartite graph, denser than any
        background region but not a perfect clique (fraudsters stagger
        purchases).
    reuse_merchant_fraction:
        Fraction of the block's merchants drawn from existing background
        merchants (colluding shops) instead of newly created ones.
    camouflage_per_user:
        Extra edges per fraud user to popular background merchants.
    """

    n_users: int
    n_merchants: int
    density: float = 0.5
    reuse_merchant_fraction: float = 0.5
    camouflage_per_user: int = 0

    def __post_init__(self) -> None:
        for name in ("n_users", "n_merchants", "camouflage_per_user"):
            require_integer(getattr(self, name), name)
        if self.n_users < 1 or self.n_merchants < 1:
            raise DatasetError("fraud blocks need at least one user and one merchant")
        if int(self.n_users) * int(self.n_merchants) > MAX_BLOCK_CELLS:
            raise DatasetError(
                f"fraud block of {self.n_users} users x {self.n_merchants} merchants "
                f"requests {int(self.n_users) * int(self.n_merchants)} candidate edges, "
                f"wider than the supported item universe ({MAX_BLOCK_CELLS} cells); "
                "split the group into smaller blocks"
            )
        require_density(self.density)
        if not 0.0 <= self.reuse_merchant_fraction <= 1.0:
            raise DatasetError(
                f"reuse_merchant_fraction must be in [0, 1], got {self.reuse_merchant_fraction}"
            )
        if self.camouflage_per_user < 0:
            raise DatasetError("camouflage_per_user must be >= 0")


@dataclass(frozen=True)
class InjectionResult:
    """Graph with planted fraud plus the exact ground truth."""

    graph: BipartiteGraph
    blacklist: Blacklist
    fraud_user_labels: np.ndarray
    fraud_merchant_labels: np.ndarray
    block_user_labels: tuple[np.ndarray, ...]


def inject_fraud_blocks(
    background: BipartiteGraph,
    blocks: list[FraudBlockSpec],
    rng: np.random.Generator | int | None = None,
) -> InjectionResult:
    """Append fraud groups to a background graph.

    Fraud users are new nodes (labels continue after the background's);
    merchants are a mix of new nodes and existing ones per each block's
    ``reuse_merchant_fraction``. Returns the enlarged graph and a *clean*
    blacklist of exactly the planted fraud users (apply
    :meth:`Blacklist.with_noise` afterwards to model review noise).
    """
    generator = resolve_rng(rng)
    if not blocks:
        return InjectionResult(
            graph=background,
            blacklist=Blacklist([]),
            fraud_user_labels=np.empty(0, dtype=np.int64),
            fraud_merchant_labels=np.empty(0, dtype=np.int64),
            block_user_labels=(),
        )

    popularity = merchant_popularity(background)

    next_user = background.n_users
    next_merchant = background.n_merchants
    new_edge_users: list[np.ndarray] = []
    new_edge_merchants: list[np.ndarray] = []
    fraud_users: list[np.ndarray] = []
    fraud_merchants: list[np.ndarray] = []
    per_block_users: list[np.ndarray] = []

    for spec in blocks:
        block_users = np.arange(next_user, next_user + spec.n_users, dtype=np.int64)
        next_user += spec.n_users

        n_reused = int(round(spec.reuse_merchant_fraction * spec.n_merchants))
        n_reused = min(n_reused, background.n_merchants)
        n_new = spec.n_merchants - n_reused
        reused = (
            generator.choice(background.n_merchants, size=n_reused, replace=False)
            if n_reused
            else np.empty(0, dtype=np.int64)
        )
        created = np.arange(next_merchant, next_merchant + n_new, dtype=np.int64)
        next_merchant += n_new
        block_merchants = np.concatenate([reused, created]).astype(np.int64)

        block_u, block_m = dense_block_pairs(
            generator, spec.n_users, spec.n_merchants, spec.density
        )
        new_edge_users.append(block_users[block_u])
        new_edge_merchants.append(block_merchants[block_m])

        # camouflage purchases at popular background merchants
        if spec.camouflage_per_user and popularity is not None:
            n_camouflage = spec.n_users * spec.camouflage_per_user
            camo_merchants = generator.choice(
                background.n_merchants, size=n_camouflage, p=popularity
            )
            camo_users = np.repeat(block_users, spec.camouflage_per_user)
            new_edge_users.append(camo_users)
            new_edge_merchants.append(camo_merchants)

        fraud_users.append(block_users)
        fraud_merchants.append(block_merchants)
        per_block_users.append(block_users)

    edge_users = np.concatenate([background.edge_users] + new_edge_users)
    edge_merchants = np.concatenate([background.edge_merchants] + new_edge_merchants)
    graph = BipartiteGraph(
        n_users=next_user,
        n_merchants=next_merchant,
        edge_users=edge_users,
        edge_merchants=edge_merchants,
    )
    all_fraud_users = np.unique(np.concatenate(fraud_users))
    return InjectionResult(
        graph=graph,
        blacklist=Blacklist(all_fraud_users.tolist()),
        fraud_user_labels=all_fraud_users,
        fraud_merchant_labels=np.unique(np.concatenate(fraud_merchants)),
        block_user_labels=tuple(per_block_users),
    )
