"""Dataset statistics tables (the reproduction's Table I)."""

from __future__ import annotations

from .jd_like import Dataset

__all__ = ["dataset_row", "datasets_table"]


def dataset_row(dataset: Dataset) -> dict[str, int | str]:
    """One row in the Table-I layout: PINs, fraud PINs, merchants, edges."""
    return {
        "dataset": dataset.name,
        "node_pin": dataset.graph.n_users,
        "fraud_pin": dataset.n_blacklisted,
        "node_merchant": dataset.graph.n_merchants,
        "edge": dataset.graph.n_edges,
    }


def datasets_table(datasets: list[Dataset]) -> list[dict[str, int | str]]:
    """Table-I rows for several datasets."""
    return [dataset_row(dataset) for dataset in datasets]
