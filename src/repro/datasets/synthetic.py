"""Synthetic bipartite transaction backgrounds.

The paper's datasets are proprietary JD.com purchase logs. Their relevant
structural properties — the only ones the algorithms can see — are:

* heavy-tailed degree distributions on both sides (a few hyper-popular
  merchants, a few power shoppers, a long tail of one-purchase users), and
* an overall sparse graph (average user degree ≈ 1.3–2.3 in Table I).

A bipartite Chung–Lu model reproduces both: each node gets an expected
weight drawn from a (bounded) Pareto distribution, and edges connect
endpoints sampled proportionally to weight. :func:`uniform_bipartite` is the
structure-free control used by tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..graph import BipartiteGraph
from ..sampling import resolve_rng

__all__ = ["powerlaw_weights", "chung_lu_bipartite", "uniform_bipartite"]


def powerlaw_weights(
    n: int,
    exponent: float,
    rng: np.random.Generator,
    w_min: float = 1.0,
    w_max: float | None = None,
) -> np.ndarray:
    """Draw ``n`` Pareto(``exponent``) weights, optionally truncated.

    ``exponent`` is the tail exponent ``α`` of ``P(W > w) ∝ w^{-α}``; values
    around 1.5–2.5 fit commerce data. ``w_max`` defaults to ``n^{1/α}·w_min``
    (the natural cut-off that keeps the maximum expected degree realisable).
    """
    if n <= 0:
        return np.empty(0, dtype=np.float64)
    if exponent <= 0:
        raise DatasetError(f"power-law exponent must be positive, got {exponent}")
    if w_max is None:
        w_max = w_min * n ** (1.0 / exponent)
    # inverse-CDF sampling of a truncated Pareto
    u = rng.random(n)
    lo = w_min ** (-exponent)
    hi = w_max ** (-exponent)
    return (lo - u * (lo - hi)) ** (-1.0 / exponent)


def chung_lu_bipartite(
    n_users: int,
    n_merchants: int,
    n_edges: int,
    user_exponent: float = 2.0,
    merchant_exponent: float = 1.6,
    rng: np.random.Generator | int | None = None,
    deduplicate: bool = True,
) -> BipartiteGraph:
    """Heavy-tailed random bipartite graph with ~``n_edges`` edges.

    Both endpoints of every edge are sampled independently, proportionally
    to Pareto weights — the bipartite Chung–Lu construction. With
    ``deduplicate=True`` repeated pairs collapse, so the realised edge count
    can fall slightly below ``n_edges`` (a few percent at realistic
    sparsity).
    """
    generator = resolve_rng(rng)
    if n_users <= 0 or n_merchants <= 0:
        raise DatasetError("both partitions must be non-empty")
    if n_edges < 0:
        raise DatasetError(f"n_edges must be >= 0, got {n_edges}")

    user_weights = powerlaw_weights(n_users, user_exponent, generator)
    merchant_weights = powerlaw_weights(n_merchants, merchant_exponent, generator)
    user_p = user_weights / user_weights.sum()
    merchant_p = merchant_weights / merchant_weights.sum()

    edge_users = generator.choice(n_users, size=n_edges, p=user_p)
    edge_merchants = generator.choice(n_merchants, size=n_edges, p=merchant_p)
    if deduplicate and n_edges:
        pairs = np.unique(
            np.stack([edge_users, edge_merchants], axis=1), axis=0
        )
        edge_users, edge_merchants = pairs[:, 0], pairs[:, 1]
    return BipartiteGraph(
        n_users=n_users,
        n_merchants=n_merchants,
        edge_users=edge_users,
        edge_merchants=edge_merchants,
    )


def uniform_bipartite(
    n_users: int,
    n_merchants: int,
    n_edges: int,
    rng: np.random.Generator | int | None = None,
    deduplicate: bool = True,
) -> BipartiteGraph:
    """Erdős–Rényi style bipartite graph: endpoints uniform at random."""
    generator = resolve_rng(rng)
    if n_users <= 0 or n_merchants <= 0:
        raise DatasetError("both partitions must be non-empty")
    edge_users = generator.integers(0, n_users, size=n_edges)
    edge_merchants = generator.integers(0, n_merchants, size=n_edges)
    if deduplicate and n_edges:
        pairs = np.unique(np.stack([edge_users, edge_merchants], axis=1), axis=0)
        edge_users, edge_merchants = pairs[:, 0], pairs[:, 1]
    return BipartiteGraph(
        n_users=n_users,
        n_merchants=n_merchants,
        edge_users=edge_users,
        edge_merchants=edge_merchants,
    )
