"""Chunked synthetic emitters: graphs far larger than RAM, straight to disk.

The in-memory generators in :mod:`repro.datasets.synthetic` materialise the
whole edge set before returning, which caps them at a few tens of millions
of edges. The emitters here draw the same distributions **chunk by chunk**
(i.i.d. draws, so per-chunk sampling is distributionally identical to one
big draw) and :func:`write_store` streams the chunks through a
:class:`~repro.graph.StoreFileWriter` into an mmap-ready store file — peak
RSS stays at one chunk plus the node-weight vectors, regardless of the
edge count. A 10M-edge / 1M-user graph writes in a few seconds inside a
couple hundred MB of memory; the result opens lazily with
``GraphStore.open(path, mmap=True)``.

Deduplication is deliberately *not* offered: collapsing repeated pairs
needs global state proportional to the edge set, which is exactly what
out-of-core generation must avoid. Multi-edges are legal in the graph
substrate (parallel purchases), and at stream scale a duplicate pair is a
vanishing fraction of the mass.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import DatasetError
from ..graph import StoreFileWriter
from ..graph.store import StoreLayout
from .synthetic import powerlaw_weights

__all__ = [
    "chung_lu_edge_chunks",
    "uniform_edge_chunks",
    "write_store",
]

#: edges drawn per chunk by default — ~16 MB of int64 scratch
DEFAULT_CHUNK = 1 << 20


def _check_sizes(n_users: int, n_merchants: int, n_edges: int, chunk: int) -> None:
    if n_users <= 0 or n_merchants <= 0:
        raise DatasetError(
            f"need positive partition sizes, got {n_users} users / "
            f"{n_merchants} merchants"
        )
    if n_edges < 0:
        raise DatasetError(f"edge count must be non-negative, got {n_edges}")
    if chunk <= 0:
        raise DatasetError(f"chunk size must be positive, got {chunk}")


def uniform_edge_chunks(
    n_users: int,
    n_merchants: int,
    n_edges: int,
    rng: np.random.Generator | int | None = None,
    chunk: int = DEFAULT_CHUNK,
    weighted: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray | None]]:
    """Yield ``(users, merchants, weights-or-None)`` chunks, uniform endpoints.

    The streamed sibling of
    :func:`~repro.datasets.synthetic.uniform_bipartite` (without
    deduplication — see the module docstring). Weights, when requested,
    are half-integers in ``[0.5, 32)`` so they narrow losslessly to
    ``float32`` in a compact store.
    """
    _check_sizes(n_users, n_merchants, n_edges, chunk)
    generator = np.random.default_rng(rng)
    remaining = int(n_edges)
    while remaining > 0:
        size = min(chunk, remaining)
        users = generator.integers(0, n_users, size=size)
        merchants = generator.integers(0, n_merchants, size=size)
        weights = None
        if weighted:
            weights = generator.integers(1, 64, size=size) / 2.0
        yield users, merchants, weights
        remaining -= size


def chung_lu_edge_chunks(
    n_users: int,
    n_merchants: int,
    n_edges: int,
    user_exponent: float = 2.0,
    merchant_exponent: float = 1.6,
    rng: np.random.Generator | int | None = None,
    chunk: int = DEFAULT_CHUNK,
    weighted: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray | None]]:
    """Yield Chung–Lu edge chunks: power-law expected degrees on both sides.

    The streamed sibling of
    :func:`~repro.datasets.synthetic.chung_lu_bipartite` (without
    deduplication). The per-node probability vectors are drawn once up
    front — ``O(n_users + n_merchants)`` memory — and every chunk samples
    endpoints independently from them, so the concatenation of all chunks
    is distributed exactly like one monolithic draw.
    """
    _check_sizes(n_users, n_merchants, n_edges, chunk)
    generator = np.random.default_rng(rng)
    user_weights = powerlaw_weights(n_users, user_exponent, generator)
    merchant_weights = powerlaw_weights(n_merchants, merchant_exponent, generator)
    user_p = user_weights / user_weights.sum()
    merchant_p = merchant_weights / merchant_weights.sum()
    del user_weights, merchant_weights
    remaining = int(n_edges)
    while remaining > 0:
        size = min(chunk, remaining)
        users = generator.choice(n_users, size=size, p=user_p)
        merchants = generator.choice(n_merchants, size=size, p=merchant_p)
        weights = None
        if weighted:
            weights = generator.integers(1, 64, size=size) / 2.0
        yield users, merchants, weights
        remaining -= size


def write_store(
    path: str,
    n_users: int,
    n_merchants: int,
    n_edges: int,
    kind: str = "chung_lu",
    rng: np.random.Generator | int | None = None,
    chunk: int = DEFAULT_CHUNK,
    weighted: bool = False,
    id_dtype: str = "auto",
    weight_dtype: str = "float32",
) -> StoreLayout:
    """Stream a synthetic graph straight into a store file at ``path``.

    ``kind`` selects the emitter (``"chung_lu"`` or ``"uniform"``). Edges
    never exist in RAM beyond the current chunk: each chunk goes through
    :meth:`StoreFileWriter.append`, which validates ranges and writes the
    columns in place. The default ``weight_dtype="float32"`` is safe for
    the built-in emitters (half-integer weights, bit-exact in float32);
    the writer rejects any chunk that would narrow lossily. Returns the
    finished file's :class:`~repro.graph.StoreLayout` (also recoverable
    later via :func:`~repro.graph.read_file_layout`).
    """
    emitters = {"chung_lu": chung_lu_edge_chunks, "uniform": uniform_edge_chunks}
    if kind not in emitters:
        raise DatasetError(
            f"unknown stream emitter {kind!r}; choose from {sorted(emitters)}"
        )
    chunks = emitters[kind](
        n_users, n_merchants, n_edges, rng=rng, chunk=chunk, weighted=weighted
    )
    with StoreFileWriter(
        path,
        n_users=n_users,
        n_merchants=n_merchants,
        n_edges=n_edges,
        weighted=weighted,
        id_dtype=id_dtype,
        weight_dtype=weight_dtype,
    ) as writer:
        for users, merchants, weights in chunks:
            writer.append(users, merchants, weights)
    return writer.layout
