"""Persistence for datasets: save/load a :class:`Dataset` directory.

Layout::

    <dir>/
      graph.npz        # the bipartite graph (labels, weights)
      blacklist.json   # noisy ground truth
      clean.json       # exact planted fraud labels
      meta.json        # name + generation parameters

Also provides :func:`toy_dataset`, the tiny deterministic fixture used by
examples and tests.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..errors import DatasetError
from ..graph import load_npz, save_npz, BipartiteGraph
from .blacklist import Blacklist
from .injection import FraudBlockSpec, inject_fraud_blocks
from .jd_like import Dataset
from .synthetic import uniform_bipartite

__all__ = ["save_dataset", "load_dataset", "toy_dataset"]


def save_dataset(dataset: Dataset, directory: str | os.PathLike[str]) -> None:
    """Write a dataset as a directory of files."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    save_npz(dataset.graph, path / "graph.npz")
    dataset.blacklist.save(path / "blacklist.json")
    (path / "clean.json").write_text(
        json.dumps(dataset.clean_fraud_labels.tolist()), encoding="utf-8"
    )
    (path / "meta.json").write_text(
        json.dumps({"name": dataset.name, "params": dataset.params}, indent=2),
        encoding="utf-8",
    )


def load_dataset(directory: str | os.PathLike[str]) -> Dataset:
    """Read a dataset saved by :func:`save_dataset`."""
    path = Path(directory)
    meta_path = path / "meta.json"
    if not meta_path.exists():
        raise DatasetError(f"{path} does not look like a dataset directory (no meta.json)")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    clean = json.loads((path / "clean.json").read_text(encoding="utf-8"))
    return Dataset(
        name=meta["name"],
        graph=load_npz(path / "graph.npz"),
        blacklist=Blacklist.load(path / "blacklist.json"),
        clean_fraud_labels=np.array(sorted(clean), dtype=np.int64),
        params=meta.get("params", {}),
    )


def toy_dataset(seed: int = 0) -> Dataset:
    """A small deterministic dataset for examples and fast tests.

    ~600 users, ~400 merchants, ~1.2k background edges, three planted fraud
    blocks that are clearly denser than anything the background can peel to,
    clean blacklist (no label noise) — detectors should do visibly well
    here, which makes it the right fixture for quickstarts. The background
    is *uniform* (not heavy-tailed) precisely so the signal stays clean; the
    JD-like datasets are the realistic, hard ones.
    """
    rng = np.random.default_rng(seed)
    background: BipartiteGraph = uniform_bipartite(
        n_users=600, n_merchants=400, n_edges=1_200, rng=rng
    )
    blocks = [
        FraudBlockSpec(
            n_users=25, n_merchants=8, density=0.7,
            reuse_merchant_fraction=0.25, camouflage_per_user=1,
        ),
        FraudBlockSpec(
            n_users=18, n_merchants=6, density=0.65,
            reuse_merchant_fraction=0.25, camouflage_per_user=1,
        ),
        FraudBlockSpec(
            n_users=12, n_merchants=5, density=0.75,
            reuse_merchant_fraction=0.25,
        ),
    ]
    injection = inject_fraud_blocks(background, blocks, rng)
    return Dataset(
        name="toy",
        graph=injection.graph,
        blacklist=injection.blacklist,
        clean_fraud_labels=injection.fraud_user_labels,
        params={"seed": seed, "n_users": injection.graph.n_users},
    )
