"""JD-like benchmark datasets — the reproduction's stand-in for Table I.

Three synthetic datasets mirror the paper's three JD.com snapshots at 1/50
scale (``scale=1.0``): the user/merchant/edge counts and fraud fractions
keep Table I's *ratios*, the backgrounds are heavy-tailed Chung–Lu graphs,
fraud is planted as camouflaged dense blocks, and the blacklist is noised
the way manual review noise works (see :mod:`repro.datasets.blacklist`).

=======  ==========  =========  ===========  =========  ==============
dataset  paper PINs  our PINs   paper edges  our edges  fraud fraction
=======  ==========  =========  ===========  =========  ==============
jd1        454,925      9,098    1,023,846     ~20,477   5.3%
jd2      2,194,325     43,886    2,790,517     ~55,810   0.7%
jd3      4,332,696     86,654    7,997,696    ~159,954   2.3%
=======  ==========  =========  ===========  =========  ==============

``scale`` shrinks (or grows) everything proportionally — tests run at
``scale≈0.05``, benchmarks at ``0.1–0.3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError
from ..graph import BipartiteGraph
from ..sampling import resolve_rng
from .blacklist import Blacklist
from .injection import FraudBlockSpec, InjectionResult, inject_fraud_blocks
from .synthetic import chung_lu_bipartite

__all__ = ["Dataset", "JD_CONFIGS", "JdConfig", "make_jd_dataset", "make_all_jd_datasets"]


@dataclass(frozen=True)
class JdConfig:
    """Size recipe for one JD-like dataset (at ``scale = 1.0``)."""

    name: str
    n_users: int
    n_merchants: int
    n_edges: int
    n_fraud_users: int
    block_user_range: tuple[int, int]
    block_merchant_range: tuple[int, int]
    block_density_range: tuple[float, float]
    camouflage_per_user: int
    reuse_merchant_fraction: float
    blacklist_drop_fraction: float
    blacklist_add_fraction: float


#: recipes for the three paper datasets at 1/50 of Table I's sizes
JD_CONFIGS: dict[int, JdConfig] = {
    1: JdConfig(
        name="jd1",
        n_users=9_098,
        n_merchants=4_532,
        n_edges=20_477,
        n_fraud_users=485,
        block_user_range=(60, 120),
        block_merchant_range=(15, 25),
        block_density_range=(0.45, 0.60),
        camouflage_per_user=1,
        reuse_merchant_fraction=0.5,
        blacklist_drop_fraction=0.30,
        blacklist_add_fraction=0.45,
    ),
    2: JdConfig(
        name="jd2",
        n_users=43_886,
        n_merchants=2_417,
        n_edges=55_810,
        n_fraud_users=321,
        block_user_range=(50, 100),
        block_merchant_range=(10, 18),
        block_density_range=(0.45, 0.65),
        camouflage_per_user=1,
        reuse_merchant_fraction=0.4,
        blacklist_drop_fraction=0.30,
        blacklist_add_fraction=0.45,
    ),
    3: JdConfig(
        name="jd3",
        n_users=86_654,
        n_merchants=11_133,
        n_edges=159_954,
        n_fraud_users=2_034,
        block_user_range=(80, 160),
        block_merchant_range=(18, 30),
        block_density_range=(0.45, 0.60),
        camouflage_per_user=2,
        reuse_merchant_fraction=0.5,
        blacklist_drop_fraction=0.30,
        blacklist_add_fraction=0.45,
    ),
}


@dataclass(frozen=True)
class Dataset:
    """A ready-to-evaluate fraud-detection dataset.

    Attributes
    ----------
    name:
        ``jd1`` / ``jd2`` / ``jd3`` (suffixed with the scale when ≠ 1).
    graph:
        The *"who buy-from where"* bipartite graph, fraud included.
    blacklist:
        The noisy ground truth used for evaluation — what JD's manual
        review process would have produced.
    clean_fraud_labels:
        The exact planted fraud users (for diagnostics; evaluation against
        this instead of ``blacklist`` shows noise-free headroom).
    params:
        Generation parameters for provenance.
    """

    name: str
    graph: BipartiteGraph
    blacklist: Blacklist
    clean_fraud_labels: np.ndarray
    params: dict[str, float | int | str] = field(default_factory=dict)

    @property
    def n_blacklisted(self) -> int:
        """Size of the (noisy) blacklist."""
        return len(self.blacklist)


def _build_block_specs(
    config: JdConfig, n_fraud: int, rng: np.random.Generator
) -> list[FraudBlockSpec]:
    """Cut ``n_fraud`` users into groups with sizes drawn from the recipe."""
    specs: list[FraudBlockSpec] = []
    remaining = n_fraud
    lo_u, hi_u = config.block_user_range
    lo_m, hi_m = config.block_merchant_range
    lo_d, hi_d = config.block_density_range
    while remaining > 0:
        size = int(rng.integers(lo_u, hi_u + 1))
        size = min(size, remaining)
        if size < max(3, lo_u // 4):  # fold a tiny remainder into the last block
            if specs:
                last = specs.pop()
                size += last.n_users
                specs.append(
                    FraudBlockSpec(
                        n_users=size,
                        n_merchants=last.n_merchants,
                        density=last.density,
                        reuse_merchant_fraction=last.reuse_merchant_fraction,
                        camouflage_per_user=last.camouflage_per_user,
                    )
                )
                break
        specs.append(
            FraudBlockSpec(
                n_users=size,
                n_merchants=int(rng.integers(lo_m, hi_m + 1)),
                density=float(rng.uniform(lo_d, hi_d)),
                reuse_merchant_fraction=config.reuse_merchant_fraction,
                camouflage_per_user=config.camouflage_per_user,
            )
        )
        remaining -= size
    return specs


def make_jd_dataset(index: int, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Generate JD-like dataset ``index ∈ {1, 2, 3}`` at the given scale.

    The same ``(index, scale, seed)`` triple always produces the same
    dataset.
    """
    config = JD_CONFIGS.get(index)
    if config is None:
        raise DatasetError(f"dataset index must be in {sorted(JD_CONFIGS)}, got {index}")
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")

    rng = resolve_rng(np.random.SeedSequence([seed, index]))
    n_users = max(20, int(round(config.n_users * scale)))
    n_merchants = max(10, int(round(config.n_merchants * scale)))
    n_edges = max(30, int(round(config.n_edges * scale)))
    n_fraud = max(6, int(round(config.n_fraud_users * scale)))

    background = chung_lu_bipartite(
        n_users=n_users,
        n_merchants=n_merchants,
        n_edges=n_edges,
        rng=rng,
    )
    injection: InjectionResult = inject_fraud_blocks(
        background, _build_block_specs(config, n_fraud, rng), rng
    )
    noisy = injection.blacklist.with_noise(
        all_user_labels=np.arange(injection.graph.n_users, dtype=np.int64),
        drop_fraction=config.blacklist_drop_fraction,
        add_fraction=config.blacklist_add_fraction,
        rng=rng,
    )
    name = config.name if scale == 1.0 else f"{config.name}@{scale:g}"
    return Dataset(
        name=name,
        graph=injection.graph,
        blacklist=noisy,
        clean_fraud_labels=injection.fraud_user_labels,
        params={
            "index": index,
            "scale": scale,
            "seed": seed,
            "n_users": injection.graph.n_users,
            "n_merchants": injection.graph.n_merchants,
            "n_edges": injection.graph.n_edges,
            "n_fraud_planted": int(injection.fraud_user_labels.size),
            "n_blacklisted": len(noisy),
        },
    )


def make_all_jd_datasets(scale: float = 1.0, seed: int = 0) -> list[Dataset]:
    """All three JD-like datasets at one scale."""
    return [make_jd_dataset(index, scale=scale, seed=seed) for index in sorted(JD_CONFIGS)]
