"""Synthetic transaction datasets standing in for the JD.com data."""

from .blacklist import Blacklist
from .injection import FraudBlockSpec, InjectionResult, inject_fraud_blocks
from .jd_like import (
    Dataset,
    JD_CONFIGS,
    JdConfig,
    make_all_jd_datasets,
    make_jd_dataset,
)
from .loaders import load_dataset, save_dataset, toy_dataset
from .stats import dataset_row, datasets_table
from .stream import chung_lu_edge_chunks, uniform_edge_chunks, write_store
from .synthetic import chung_lu_bipartite, powerlaw_weights, uniform_bipartite

__all__ = [
    "Blacklist",
    "FraudBlockSpec",
    "InjectionResult",
    "inject_fraud_blocks",
    "Dataset",
    "JdConfig",
    "JD_CONFIGS",
    "make_jd_dataset",
    "make_all_jd_datasets",
    "save_dataset",
    "load_dataset",
    "toy_dataset",
    "dataset_row",
    "datasets_table",
    "chung_lu_bipartite",
    "uniform_bipartite",
    "powerlaw_weights",
    "chung_lu_edge_chunks",
    "uniform_edge_chunks",
    "write_store",
]
