"""Ground-truth containers mirroring JD.com's manually-reviewed blacklist.

The paper's ground truth is *noisy by construction*: accounts land on the
blacklist through manual review of high-risk transactions (so some fraud is
missed) and leave it again through appeals or because a stolen account was
recovered (so some listed PINs behave normally in a given window). That
noise is why the paper's absolute precision/recall sit well below 1 — and
the reproduction models it explicitly via :meth:`Blacklist.with_noise`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

import numpy as np

from ..errors import DatasetError
from ..sampling import resolve_rng

__all__ = ["Blacklist"]


class Blacklist:
    """An immutable set of blacklisted user labels."""

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[int]) -> None:
        self._labels = frozenset(int(label) for label in labels)

    @property
    def labels(self) -> frozenset[int]:
        """The blacklisted user labels."""
        return self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: int) -> bool:
        return int(label) in self._labels

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Blacklist):
            return NotImplemented
        return self._labels == other._labels

    def __hash__(self) -> int:
        return hash(self._labels)

    def as_array(self) -> np.ndarray:
        """Sorted label array."""
        return np.array(sorted(self._labels), dtype=np.int64)

    def mask(self, labels: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``labels`` are blacklisted."""
        return np.fromiter(
            (int(label) in self._labels for label in labels),
            dtype=bool,
            count=len(labels),
        )

    def with_noise(
        self,
        all_user_labels: np.ndarray,
        drop_fraction: float = 0.0,
        add_fraction: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ) -> "Blacklist":
        """Return a noisy copy modelling manual-review imperfections.

        Parameters
        ----------
        all_user_labels:
            The full user population (noise additions are drawn from the
            non-blacklisted part).
        drop_fraction:
            Fraction of current entries removed — fraud that appealed its
            way off the list or was never reviewed.
        add_fraction:
            Number of *normal* users added, expressed as a fraction of the
            current blacklist size — stolen/compromised accounts flagged
            while behaving normally in this window.
        """
        if not 0.0 <= drop_fraction < 1.0:
            raise DatasetError(f"drop_fraction must be in [0, 1), got {drop_fraction}")
        if add_fraction < 0.0:
            raise DatasetError(f"add_fraction must be >= 0, got {add_fraction}")
        generator = resolve_rng(rng)
        current = self.as_array()
        keep_mask = generator.random(current.size) >= drop_fraction
        kept = current[keep_mask]

        n_add = int(round(add_fraction * current.size))
        additions: np.ndarray
        if n_add > 0:
            candidates = np.setdiff1d(
                np.asarray(all_user_labels, dtype=np.int64), current
            )
            n_add = min(n_add, candidates.size)
            additions = generator.choice(candidates, size=n_add, replace=False)
        else:
            additions = np.empty(0, dtype=np.int64)
        return Blacklist(np.concatenate([kept, additions]).tolist())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the blacklist as a JSON array."""
        Path(path).write_text(
            json.dumps(sorted(self._labels)), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "Blacklist":
        """Read a blacklist written by :meth:`save`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, list):
            raise DatasetError(f"{path}: expected a JSON array of labels")
        return cls(data)
