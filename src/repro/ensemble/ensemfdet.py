"""EnsemFDet — the paper's headline method (Algorithm 2, Fig. 2).

Pipeline::

    graph --(sampler.plan × N)--> compact plans --(materialize + FDET,
    parallel, shared-memory parent)--> per-sample detections
    --(majority vote, threshold T)--> U_final, V_final

The sampling stage is plan-only: the parent draws ``N`` compact
:class:`~repro.sampling.SamplePlan` objects (consuming the RNG exactly as
the historical eager sampler did) and the subgraphs are materialized inside
the detection workers against a shared-memory view of the parent graph —
see :func:`repro.ensemble.runner.detect_on_plans` for the memory model.

The expensive middle stage is run once by :meth:`EnsemFDet.fit`; the returned
:class:`EnsemFDetResult` holds the vote table so callers can evaluate *every*
threshold ``T`` (and hence draw the paper's smooth operating curves) without
re-detecting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import DetectionError, QuorumError
from ..fdet import FdetConfig, FdetResult
from ..fdet import batched as _batched
from ..graph import BipartiteGraph, GraphStore, LiveWindow
from ..parallel import ExecutorMode, FaultTolerance, ReusablePool, Timer
from ..sampling import RandomEdgeSampler, Sampler, StableEdgeSampler, resolve_rng
from .results import DetectionResult
from .runner import MemberFailure, MemberRun, SampleDetection, _raise_first_failure, run_members
from .sharding import ShardPlan, merge_shard_votes, plan_shards, run_sharded
from .voting import VoteTable, majority_vote

__all__ = ["EnsemFDetConfig", "EnsemFDetResult", "EnsemFDet"]


@dataclass(frozen=True)
class EnsemFDetConfig:
    """Configuration of the full ensemble (paper Table II parameters).

    Attributes
    ----------
    sampler:
        Structural sampling method ``M`` with its ratio ``S``; defaults to
        random edge sampling at ``S = 0.1`` (the paper's workhorse setting).
    n_samples:
        Ensemble size ``N`` (paper sweeps {10, 20, 40, 80}).
    fdet:
        FDET configuration applied to every sampled subgraph.
    executor:
        Backend for the parallel detection stage.
    n_workers:
        Pool size (``None`` = CPU count).
    seed:
        Seed for the sampling stage; fixing it makes a fit reproducible.
    track_appearances:
        Also record which nodes each sample contained, enabling the
        normalised-vote ablation (slightly more memory).
    shared_memory:
        For the process backend, publish the parent graph once through a
        shared-memory :class:`~repro.graph.GraphStore` segment instead of
        pickling graph bytes into every worker. Disable to force the
        pickled-store fallback (debugging, exotic platforms).
    tolerance:
        Degraded-mode policy for the detection stage: per-member timeout,
        bounded deterministic retries with backend degradation, and the
        minimum surviving quorum below which a fit raises
        :class:`~repro.errors.QuorumError` instead of returning a weak
        vote table. The default retries twice and accepts a half-strength
        ensemble; :meth:`FaultTolerance.strict` restores fail-fast
        semantics. Zero overhead while nothing fails.
    native_batch:
        Batched native backend: peel all eligible members of an attempt in
        one multi-member kernel call and merge votes natively. ``None``
        (the default) defers to ``REPRO_NATIVE_BATCH`` (on unless set to
        0); ``False`` forces the per-member path. Results are bitwise
        identical either way.
    shards:
        Stripe-shard the fit: members are split into this many contiguous
        groups, each run against a shard store holding only the edges its
        members sample, and the per-shard vote tables are merged — bitwise
        identical to the unsharded fit (see
        :mod:`repro.ensemble.sharding`). ``1`` (the default) disables
        sharding. Requires edge-list-reducible plans ("edges"/"stripes").
    mmap:
        Out-of-core transport: ship the parent (or each shard store) to
        process workers as an mmap-able store file instead of a shared
        segment, and — when sharding — keep at most one shard's columns
        resident in the parent at a time. A fit on a store opened with
        :meth:`~repro.graph.GraphStore.open` uses the file transport
        implicitly.
    """

    sampler: Sampler = field(default_factory=lambda: RandomEdgeSampler(0.1))
    n_samples: int = 80
    fdet: FdetConfig = field(default_factory=FdetConfig)
    executor: str = ExecutorMode.SERIAL
    n_workers: int | None = None
    seed: int | None = None
    track_appearances: bool = False
    shared_memory: bool = True
    tolerance: FaultTolerance = field(default_factory=FaultTolerance)
    native_batch: bool | None = None
    shards: int = 1
    mmap: bool = False

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise DetectionError(f"n_samples must be >= 1, got {self.n_samples}")
        if self.shards < 1:
            raise DetectionError(f"shards must be >= 1, got {self.shards}")

    @property
    def repetition_rate(self) -> float:
        """``R = S × N`` (paper Table II)."""
        return self.sampler.ratio * self.n_samples


@dataclass(frozen=True)
class EnsemFDetResult:
    """Fitted ensemble: vote table + per-sample detections + timings.

    ``sample_detections`` holds only the *surviving* members; when the
    fit degraded, ``failed_members`` records who dropped out (and why)
    and ``retry_log`` the per-attempt history. Voting thresholds passed
    to :meth:`detect` are always expressed against the configured
    ensemble size ``N`` and rescaled internally to the survivors.
    """

    config: EnsemFDetConfig
    vote_table: VoteTable
    sample_detections: tuple[SampleDetection, ...]
    sampling_seconds: float
    detection_seconds: float
    failed_members: tuple[MemberFailure, ...] = ()
    retry_log: tuple[dict, ...] = ()

    @property
    def n_samples(self) -> int:
        """Surviving ensemble size (``== config.n_samples`` unless degraded)."""
        return self.vote_table.n_samples

    @property
    def n_failed(self) -> int:
        """Members that produced no detection after every retry."""
        return len(self.failed_members)

    @property
    def effective_quorum(self) -> float:
        """Surviving fraction of the configured ensemble."""
        return self.vote_table.n_samples / self.config.n_samples

    @property
    def total_seconds(self) -> float:
        """Wall-clock spent sampling plus detecting."""
        return self.sampling_seconds + self.detection_seconds

    def effective_threshold(self, threshold: int) -> int:
        """Rescale a threshold meant for ``N`` members to the survivors.

        A caller asking for ``T`` votes out of the configured ``N`` keeps
        the same *fraction* of the ensemble when only ``n`` members
        survived: ``max(1, ceil(T·n/N))``. Identity when nothing failed.
        """
        survivors = self.vote_table.n_samples
        configured = self.config.n_samples
        if survivors == configured:
            return threshold
        return max(1, math.ceil(threshold * survivors / configured))

    def detect(self, threshold: int) -> DetectionResult:
        """Apply MVA at voting threshold ``T`` (of the configured ``N``)."""
        return majority_vote(self.vote_table, self.effective_threshold(threshold))

    def sweep_thresholds(
        self, thresholds: list[int] | None = None
    ) -> list[tuple[int, DetectionResult]]:
        """Detections for every threshold (default ``1..N``), descending size."""
        if thresholds is None:
            thresholds = list(range(1, self.n_samples + 1))
        return [(t, self.detect(t)) for t in thresholds]

    def fdet_results(self) -> list[FdetResult]:
        """The raw per-sample FDET results (e.g. for Fig.-1 score curves)."""
        return [detection.result for detection in self.sample_detections]

    def block_score_series(self) -> list[np.ndarray]:
        """Per-sample block-density series — the data behind paper Fig. 1."""
        return [detection.result.densities for detection in self.sample_detections]


def _enforce_quorum(run: MemberRun, config: EnsemFDetConfig) -> list[SampleDetection]:
    """Survivor detections, or a typed error when too many members died.

    Full-quorum policies (``min_quorum == 1.0``, e.g.
    :meth:`FaultTolerance.strict`) re-raise the first member's original
    exception so fail-fast callers keep exact error types; partial
    quorums raise :class:`~repro.errors.QuorumError` only when the
    survivors no longer clear ``tolerance.required_survivors``.
    """
    if not run.failures:
        return run.survivors()
    tolerance = config.tolerance
    if tolerance.min_quorum >= 1.0:
        _raise_first_failure(run)
    survivors = run.survivors()
    required = tolerance.required_survivors(config.n_samples)
    if len(survivors) < required:
        kinds = sorted({failure.kind for failure in run.failures})
        raise QuorumError(
            f"only {len(survivors)}/{config.n_samples} ensemble members "
            f"survived ({len(run.failures)} failed: {', '.join(kinds)}) — "
            f"below the configured quorum of {required} "
            f"(min_quorum={tolerance.min_quorum:g}); first failure: "
            f"member {run.failures[0].index}: {run.failures[0].error}"
        )
    return survivors


class EnsemFDet:
    """Ensemble based Fraud DETection (the paper's Algorithm 2).

    >>> from repro.graph import BipartiteGraph
    >>> from repro.sampling import RandomEdgeSampler
    >>> graph = BipartiteGraph.from_edges(
    ...     [(u, v) for u in range(20) for v in range(10)])
    >>> config = EnsemFDetConfig(sampler=RandomEdgeSampler(0.5), n_samples=8, seed=7)
    >>> result = EnsemFDet(config).fit(graph)
    >>> detected = result.detect(threshold=4)
    >>> detected.n_users > 0
    True

    Parameters
    ----------
    config:
        Ensemble configuration (sampling, FDET incl. peeling engine,
        executor backend).
    pool:
        Optional :class:`repro.parallel.ReusablePool`; when given, every
        :meth:`fit` runs its detection stage on these warm workers instead
        of starting a fresh pool (worth it when fitting many ensembles —
        threshold sweeps, figure experiments, services).
    """

    def __init__(
        self, config: EnsemFDetConfig | None = None, pool: ReusablePool | None = None
    ) -> None:
        self.config = config or EnsemFDetConfig()
        self.pool = pool

    def fit(
        self, graph: BipartiteGraph | GraphStore, track_members: bool | None = None
    ) -> EnsemFDetResult:
        """Plan, materialize + detect in parallel, and tally votes.

        ``track_members`` forces recording each sample's node labels on the
        returned detections; by default they are kept only when
        ``track_appearances`` needs them (the incremental layer passes
        ``True`` because its persistent state stores sample membership).

        ``graph`` may also be a :class:`~repro.graph.GraphStore` — in
        particular one opened from an mmap-backed store file — in which
        case process fan-outs ship its path+layout descriptor instead of
        graph bytes. A *windowed* store (liveness columns present)
        requires the :class:`~repro.sampling.StableEdgeSampler`: plans are
        drawn over the append-id space so membership matches the
        equivalent :meth:`fit_window` call bitwise.
        """
        config = self.config
        rng = resolve_rng(config.seed)
        track_members = self._resolve_track_members(track_members)

        source: BipartiteGraph | GraphStore = graph
        vote_graph = graph.to_graph() if isinstance(graph, GraphStore) else graph
        window = graph.edge_window() if isinstance(graph, GraphStore) else None

        with Timer() as sampling_timer:
            if window is not None:
                sampler = config.sampler
                if not isinstance(sampler, StableEdgeSampler):
                    raise DetectionError(
                        "fitting a windowed store requires StableEdgeSampler "
                        "(stripe membership is keyed by append id); compact "
                        "the window into a live graph for other samplers"
                    )
                # the id space in play: stripe membership is prefix-stable,
                # so planning over max-id+1 matches any larger watermark
                watermark = (
                    int(np.asarray(window.edge_ids).max()) + 1
                    if window.edge_ids.size
                    else 0
                )
                key = sampler.derive_key(rng)
                inclusion = sampler.stripe_inclusion(
                    sampler.n_stripes(watermark), config.n_samples, key
                )
                plans = [
                    sampler.stripe_plan(inclusion[i]) for i in range(config.n_samples)
                ]
            else:
                plans = config.sampler.plan_many(vote_graph, config.n_samples, rng)

        with Timer() as detection_timer:
            run, shard_plan = self._run(source, plans, track_members, window=None)

        return self._assemble(
            run, sampling_timer.elapsed, detection_timer.elapsed, vote_graph, shard_plan
        )

    def fit_window(
        self, window: LiveWindow, track_members: bool | None = None
    ) -> EnsemFDetResult:
        """Fit on the live edges of a rolling window.

        For the stripe-hash :class:`~repro.sampling.StableEdgeSampler`,
        membership is keyed by each edge's original *append id*, so this
        fit is the bitwise cold reference that windowed
        :meth:`~repro.ensemble.IncrementalEnsemFDet.update` calls must
        match: same key, stripe-inclusion matrix over the id space
        (``window.watermark``), and fan-out through the liveness overlay.
        Every other sampler family has no id-keyed structure to preserve
        and simply fits the compacted live graph.
        """
        config = self.config
        sampler = config.sampler
        if not isinstance(sampler, StableEdgeSampler):
            return self.fit(window.live_graph(), track_members)
        track_members = self._resolve_track_members(track_members)

        with Timer() as sampling_timer:
            key = sampler.derive_key(resolve_rng(config.seed))
            inclusion = sampler.stripe_inclusion(
                sampler.n_stripes(window.watermark), config.n_samples, key
            )
            plans = [sampler.stripe_plan(inclusion[i]) for i in range(config.n_samples)]

        with Timer() as detection_timer:
            run, shard_plan = self._run(
                window.graph, plans, track_members, window=window.edge_window()
            )

        return self._assemble(
            run, sampling_timer.elapsed, detection_timer.elapsed, window.graph, shard_plan
        )

    def _run(
        self,
        source: BipartiteGraph | GraphStore,
        plans: list,
        track_members: bool,
        window,
    ) -> tuple[MemberRun, ShardPlan | None]:
        """The detection stage: sharded when ``config.shards > 1``."""
        config = self.config
        if config.shards > 1:
            shard_plan = plan_shards(config.n_samples, config.shards)
            run = run_sharded(
                source,
                plans,
                config.fdet,
                shard_plan,
                mode=config.executor,
                n_workers=config.n_workers,
                pool=self.pool,
                track_members=track_members,
                shared_memory=config.shared_memory,
                tolerance=config.tolerance,
                window=window,
                native_batch=config.native_batch,
                mmap=config.mmap,
            )
            return run, shard_plan
        run = run_members(
            source,
            plans,
            config.fdet,
            mode=config.executor,
            n_workers=config.n_workers,
            pool=self.pool,
            track_members=track_members,
            shared_memory=config.shared_memory,
            tolerance=config.tolerance,
            window=window,
            native_batch=config.native_batch,
            mmap=config.mmap,
        )
        return run, None

    def _resolve_track_members(self, track_members: bool | None) -> bool:
        if track_members is None:
            return self.config.track_appearances
        if self.config.track_appearances and not track_members:
            raise DetectionError(
                "track_members=False contradicts track_appearances=True: "
                "appearance counts need each sample's membership"
            )
        return track_members

    def _assemble(
        self,
        run: MemberRun,
        sampling_seconds: float,
        detection_seconds: float,
        graph: BipartiteGraph | None = None,
        shard_plan: ShardPlan | None = None,
    ) -> EnsemFDetResult:
        config = self.config
        detections = _enforce_quorum(run, config)
        table = None
        if graph is not None and _batched.resolve_native_batch(config.native_batch):
            counters = None
            if shard_plan is not None:
                # shard-wise tallies summed — exactly the global tally
                # (integer votes); None falls through to the global paths
                grouped = [
                    [d for i in members if (d := run.detections[i]) is not None]
                    for members in shard_plan.members
                ]
                counters = merge_shard_votes(grouped, graph)
            if counters is None:
                counters = _batched.vote_counters(detections, graph)
            if counters is not None:
                table = VoteTable(
                    n_samples=len(detections),
                    user_votes=counters[0],
                    merchant_votes=counters[1],
                )
        if table is None:
            table = VoteTable.from_detections(
                [d.result.detected_users().tolist() for d in detections],
                [d.result.detected_merchants().tolist() for d in detections],
            )
        if config.track_appearances:
            table.attach_appearances(
                [d.sample_users for d in detections],
                [d.sample_merchants for d in detections],
            )
        return EnsemFDetResult(
            config=config,
            vote_table=table,
            sample_detections=tuple(detections),
            sampling_seconds=sampling_seconds,
            detection_seconds=detection_seconds,
            failed_members=run.failures,
            retry_log=run.retry_log,
        )

    def fit_detect(self, graph: BipartiteGraph, threshold: int) -> DetectionResult:
        """Convenience: fit then apply MVA at ``threshold`` in one call."""
        return self.fit(graph).detect(threshold)
