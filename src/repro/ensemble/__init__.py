"""EnsemFDet ensemble framework (paper §IV-C)."""

from .ensemfdet import EnsemFDet, EnsemFDetConfig, EnsemFDetResult
from .results import DetectionResult
from .runner import SampleDetection, detect_on_samples
from .soft_voting import SoftVoteTable, soft_threshold_sweep, soft_votes_from_detections
from .voting import VoteTable, majority_vote, normalized_majority_vote

__all__ = [
    "EnsemFDet",
    "EnsemFDetConfig",
    "EnsemFDetResult",
    "DetectionResult",
    "SampleDetection",
    "detect_on_samples",
    "VoteTable",
    "majority_vote",
    "normalized_majority_vote",
    "SoftVoteTable",
    "soft_votes_from_detections",
    "soft_threshold_sweep",
]
