"""EnsemFDet ensemble framework (paper §IV-C)."""

from .ensemfdet import EnsemFDet, EnsemFDetConfig, EnsemFDetResult
from .incremental import IncrementalEnsemFDet, UpdateReport
from .results import (
    DetectionResult,
    DetectionState,
    load_detection_state,
    save_detection_state,
)
from .runner import SampleDetection, detect_on_plans, detect_on_samples
from .soft_voting import SoftVoteTable, soft_threshold_sweep, soft_votes_from_detections
from .voting import VoteTable, majority_vote, normalized_majority_vote

__all__ = [
    "EnsemFDet",
    "EnsemFDetConfig",
    "EnsemFDetResult",
    "IncrementalEnsemFDet",
    "UpdateReport",
    "DetectionResult",
    "DetectionState",
    "save_detection_state",
    "load_detection_state",
    "SampleDetection",
    "detect_on_plans",
    "detect_on_samples",
    "VoteTable",
    "majority_vote",
    "normalized_majority_vote",
    "SoftVoteTable",
    "soft_votes_from_detections",
    "soft_threshold_sweep",
]
