"""EnsemFDet ensemble framework (paper §IV-C)."""

from .ensemfdet import EnsemFDet, EnsemFDetConfig, EnsemFDetResult
from .incremental import IncrementalEnsemFDet, UpdateReport
from .results import (
    DetectionResult,
    DetectionState,
    load_detection_state,
    load_detection_state_with_recovery,
    save_detection_state,
    state_backup_path,
)
from .runner import (
    MemberFailure,
    MemberRun,
    SampleDetection,
    detect_on_plans,
    detect_on_samples,
    run_members,
)
from .sharding import ShardPlan, merge_shard_votes, plan_shards, run_sharded
from .soft_voting import SoftVoteTable, soft_threshold_sweep, soft_votes_from_detections
from .voting import VoteTable, majority_vote, normalized_majority_vote

__all__ = [
    "EnsemFDet",
    "EnsemFDetConfig",
    "EnsemFDetResult",
    "IncrementalEnsemFDet",
    "UpdateReport",
    "DetectionResult",
    "DetectionState",
    "save_detection_state",
    "load_detection_state",
    "load_detection_state_with_recovery",
    "state_backup_path",
    "MemberFailure",
    "MemberRun",
    "SampleDetection",
    "detect_on_plans",
    "detect_on_samples",
    "run_members",
    "ShardPlan",
    "plan_shards",
    "run_sharded",
    "merge_shard_votes",
    "VoteTable",
    "majority_vote",
    "normalized_majority_vote",
    "SoftVoteTable",
    "soft_votes_from_detections",
    "soft_threshold_sweep",
]
