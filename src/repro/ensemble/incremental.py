"""Incremental EnsemFDet: keep detection state warm across edge deltas.

A cold :meth:`EnsemFDet.fit` re-samples and re-peels all ``N`` ensemble
members from scratch every time the graph changes. In the streaming
scenario — transactions keep arriving, verdicts must stay fresh —
:class:`IncrementalEnsemFDet` exploits the prefix stability of
:class:`repro.sampling.StableEdgeSampler`: appending a batch of edges
changes only the ensemble members whose stripe set intersects the delta, so
only those members' FDET runs (``≈ S·N`` of ``N`` for a stripe-local
delta) are recomputed and their votes merged back into the stored table.

The refreshed state is **bit-identical** to a cold re-fit on the grown
graph with the same seed: untouched members' sampled subgraphs are
unchanged by construction, refreshed members re-run the same deterministic
FDET the cold fit would, and vote subtraction/addition reproduces the
fresh tally exactly.

State survives restarts through :func:`repro.ensemble.results.save_detection_state`
(see :meth:`IncrementalEnsemFDet.save` / :meth:`IncrementalEnsemFDet.load`)
and the ``ensemfdet watch`` / ``ensemfdet update`` CLI subcommands drive the
whole loop from edge-list files.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..errors import DetectionError, QuorumError
from ..fdet import FdetConfig, LogWeightedDensity, SecondDifferenceRule
from ..graph import BipartiteGraph, GraphAccumulator, LiveWindow, WindowConfig
from ..parallel import FaultTolerance, ReusablePool, Timer
from ..sampling import StableEdgeSampler, resolve_rng
from .ensemfdet import EnsemFDet, EnsemFDetConfig, EnsemFDetResult
from .results import (
    DetectionResult,
    DetectionState,
    load_detection_state,
    load_detection_state_with_recovery,
    save_detection_state,
)
from .runner import MemberFailure, SampleDetection, _raise_first_failure, run_members
from .voting import VoteTable, majority_vote

__all__ = ["IncrementalEnsemFDet", "UpdateReport"]

_CONFIG_FORMAT = 1


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`IncrementalEnsemFDet.update` call did.

    Attributes
    ----------
    n_new_edges:
        Edges appended by the delta.
    refreshed_samples:
        Indices of the ensemble members whose sampled edge set intersected
        the delta and were re-detected.
    n_samples:
        Ensemble size ``N`` (for computing the refresh fraction).
    sampling_seconds, detection_seconds:
        Wall-clock of the re-sampling and re-detection stages.
    failed_members:
        Members whose refresh failed permanently this update (their
        previous detection stays in the vote table, now stale).
    stale_members:
        Every member currently carrying stale votes (accumulated across
        updates until a later refresh succeeds).
    retry_log:
        Per-attempt history of this update's detection stage.
    n_removed_edges:
        Edges retracted by an explicit deletion delta (windowed mode).
    n_expired_edges:
        Edges that fell out of the rolling window this update.
    """

    n_new_edges: int
    refreshed_samples: tuple[int, ...]
    n_samples: int
    sampling_seconds: float
    detection_seconds: float
    failed_members: tuple[MemberFailure, ...] = ()
    stale_members: tuple[int, ...] = ()
    retry_log: tuple[dict, ...] = ()
    n_removed_edges: int = 0
    n_expired_edges: int = 0

    @property
    def n_refreshed(self) -> int:
        """How many ensemble members were re-run successfully."""
        return len(self.refreshed_samples) - len(self.failed_members)

    @property
    def total_seconds(self) -> float:
        """Wall-clock of the whole update."""
        return self.sampling_seconds + self.detection_seconds


@dataclass
class _SampleState:
    """One ensemble member's last detection and sample contents (labels)."""

    detected_users: np.ndarray
    detected_merchants: np.ndarray
    sample_users: np.ndarray
    sample_merchants: np.ndarray

    @classmethod
    def from_detection(cls, detection: SampleDetection) -> "_SampleState":
        return cls(
            detected_users=detection.result.detected_users(),
            detected_merchants=detection.result.detected_merchants(),
            sample_users=np.array(detection.sample_users, dtype=np.int64),
            sample_merchants=np.array(detection.sample_merchants, dtype=np.int64),
        )


def _add_votes(counter: Counter[int], labels: np.ndarray) -> None:
    counter.update(labels.tolist())


def _subtract_votes(counter: Counter[int], labels: np.ndarray) -> None:
    for label in labels.tolist():
        remaining = counter[label] - 1
        if remaining > 0:
            counter[label] = remaining
        else:
            del counter[label]


class IncrementalEnsemFDet:
    """EnsemFDet with warm state and delta-scoped re-detection.

    >>> from repro.graph import BipartiteGraph
    >>> from repro.sampling import StableEdgeSampler
    >>> graph = BipartiteGraph.from_edges(
    ...     [(u, v) for u in range(20) for v in range(10)])
    >>> config = EnsemFDetConfig(
    ...     sampler=StableEdgeSampler(0.5, stripe=16), n_samples=8, seed=7)
    >>> detector = IncrementalEnsemFDet(config)
    >>> _ = detector.fit(graph)
    >>> report = detector.update([0, 1], [9, 9])
    >>> report.n_new_edges
    2
    >>> detector.detect(threshold=4).n_users > 0
    True

    Parameters
    ----------
    config:
        Ensemble configuration. The sampler **must** be a
        :class:`StableEdgeSampler` (prefix stability is what makes partial
        refresh sound) and ``seed`` must be set (the sampling key has to be
        re-derivable on every update).
    pool:
        Optional :class:`ReusablePool`; both the initial fit and every
        update run their detection stage on these warm workers.
    window:
        Optional :class:`~repro.graph.WindowConfig`. When set, the
        detector operates on a rolling window: each :meth:`update` may
        carry deletion deltas (``remove_users`` / ``remove_merchants``),
        expired edges leave the window automatically, and the refreshed
        state stays bit-identical to a cold
        :meth:`EnsemFDet.fit_window` on the live window.
    """

    def __init__(
        self,
        config: EnsemFDetConfig | None = None,
        pool: ReusablePool | None = None,
        window: WindowConfig | None = None,
    ) -> None:
        if config is None:
            config = EnsemFDetConfig(sampler=StableEdgeSampler(0.1), seed=0)
        if not isinstance(config.sampler, StableEdgeSampler):
            raise DetectionError(
                "IncrementalEnsemFDet requires a StableEdgeSampler (got "
                f"{type(config.sampler).__name__}); other samplers reshuffle every "
                "sample on any graph change, which defeats incremental refresh"
            )
        if config.seed is None:
            raise DetectionError(
                "IncrementalEnsemFDet requires an explicit seed so updates can "
                "re-derive the sampling key"
            )
        self.config = config
        self.pool = pool
        self.window_config = window
        #: free-form JSON-able annotations persisted with the state (e.g.
        #: the watch CLI's source-file row offset)
        self.meta: dict = {}
        self._graph: BipartiteGraph | None = None
        self._acc: GraphAccumulator | None = None
        self._samples: list[_SampleState] = []
        self._table: VoteTable | None = None
        #: members whose last refresh failed permanently — their votes are
        #: stale until a later update refreshes them successfully
        self._degraded: set[int] = set()

    # ------------------------------------------------------------------
    # fitting & updating
    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """``True`` once :meth:`fit` (or :meth:`load`) has run."""
        return self._table is not None

    @property
    def graph(self) -> BipartiteGraph:
        """The accumulated graph the state is currently synchronised with."""
        self._require_fitted()
        return self._graph

    @property
    def vote_table(self) -> VoteTable:
        """The live vote table (mutated in place by :meth:`update`)."""
        self._require_fitted()
        return self._table

    def _require_fitted(self) -> None:
        if self._table is None:
            raise DetectionError("call fit() (or load()) before using the detector")

    @property
    def stale_members(self) -> tuple[int, ...]:
        """Members currently serving stale votes (degraded mode), sorted."""
        return tuple(sorted(self._degraded))

    def window(self) -> LiveWindow:
        """Snapshot of the rolling window (windowed detectors only)."""
        self._require_fitted()
        if self._acc is None:
            raise DetectionError(
                "this detector is append-only; construct with window=WindowConfig(...)"
            )
        return self._acc.window()

    def fit(self, graph: BipartiteGraph, timestamp: float = 0.0) -> EnsemFDetResult:
        """Cold fit on ``graph``; initialises the warm state.

        Member tracking is forced on: the persisted state records each
        sample's node labels so appearance counts can be refreshed after
        a restart. A windowed detector records ``graph`` as batch 0 of
        the rolling window, at ``timestamp``.
        """
        if self.window_config is not None:
            self._acc = GraphAccumulator.from_graph(
                graph, window=self.window_config, timestamp=timestamp
            )
            live = self._acc.window()
            result = EnsemFDet(self.config, pool=self.pool).fit_window(
                live, track_members=True
            )
            graph = live.graph
        else:
            if timestamp:
                raise DetectionError("fit timestamps require a windowed detector")
            result = EnsemFDet(self.config, pool=self.pool).fit(graph, track_members=True)
        self._graph = graph
        self._samples = [
            _SampleState.from_detection(detection) for detection in result.sample_detections
        ]
        table = VoteTable(
            n_samples=result.vote_table.n_samples,
            user_votes=Counter(result.vote_table.user_votes),
            merchant_votes=Counter(result.vote_table.merchant_votes),
        )
        if result.vote_table.user_appearances is not None:
            table.user_appearances = Counter(result.vote_table.user_appearances)
            table.merchant_appearances = Counter(result.vote_table.merchant_appearances)
        self._table = table
        return result

    def update(
        self,
        users=None,
        merchants=None,
        weights=None,
        *,
        remove_users=None,
        remove_merchants=None,
        timestamp: float | None = None,
    ) -> UpdateReport:
        """Apply an edge delta and refresh only the invalidated members.

        ``users`` / ``merchants`` are parallel arrays of **global labels**
        (unseen labels grow the partitions); ``weights`` is an optional
        parallel weight column. Returns an :class:`UpdateReport`; the
        refreshed detections are available through :meth:`detect`.

        Windowed detectors additionally accept a *deletion delta*
        (``remove_users`` / ``remove_merchants``: each pair retracts its
        oldest live edge) and a batch ``timestamp``; edges falling out of
        the rolling window expire automatically. A member is re-run
        exactly when its stripe set intersects the appended, retracted or
        expired ids, which keeps the state bit-identical to a cold
        :meth:`EnsemFDet.fit_window` on the live window. On an
        append-only detector the deletion/timestamp parameters raise
        :class:`~repro.errors.DetectionError`.

        Because :class:`StableEdgeSampler` plans are prefix-stable, the
        stale members' plans are just their stripe rows re-hashed on the
        grown edge count — no subgraph is materialized parent-side. All
        refreshed members share one columnar store of the grown graph
        (one shared-memory export per update on the process backend).
        """
        self._require_fitted()
        if users is None:
            users = np.empty(0, dtype=np.int64)
        if merchants is None:
            merchants = np.empty(0, dtype=np.int64)
        if self.window_config is not None:
            return self._update_windowed(
                users, merchants, weights, remove_users, remove_merchants, timestamp
            )
        if remove_users is not None or remove_merchants is not None:
            raise DetectionError(
                "deletion deltas require a windowed detector "
                "(construct with window=WindowConfig(...))"
            )
        if timestamp is not None:
            raise DetectionError(
                "batch timestamps require a windowed detector "
                "(construct with window=WindowConfig(...))"
            )
        config = self.config
        sampler: StableEdgeSampler = config.sampler

        with Timer() as sampling_timer:
            accumulator = GraphAccumulator.from_graph(self._graph)
            start, stop = accumulator.append(users, merchants, weights)
            new_graph = accumulator.graph()
            key = sampler.derive_key(resolve_rng(config.seed))
            inclusion = sampler.stripe_inclusion(
                sampler.n_stripes(new_graph.n_edges), config.n_samples, key
            )
            stale = self._stale_members(
                inclusion, np.arange(start, stop, dtype=np.int64), sampler.stripe
            )
            plans = [sampler.stripe_plan(inclusion[index]) for index in stale.tolist()]

        with Timer() as detection_timer:
            run = run_members(
                new_graph,
                plans,
                config.fdet,
                mode=config.executor,
                n_workers=config.n_workers,
                pool=self.pool,
                track_members=True,
                shared_memory=config.shared_memory,
                tolerance=config.tolerance,
                native_batch=config.native_batch,
                # updates refresh few members, so sharding would be pure
                # overhead; the mmap transport still applies
                mmap=config.mmap,
            )

        stale_indices = stale.tolist()
        failures = self._merge_refreshed(run, stale_indices)
        self._graph = new_graph
        return UpdateReport(
            n_new_edges=stop - start,
            refreshed_samples=tuple(int(i) for i in stale_indices),
            n_samples=config.n_samples,
            sampling_seconds=sampling_timer.elapsed,
            detection_seconds=detection_timer.elapsed,
            failed_members=failures,
            stale_members=tuple(sorted(self._degraded)),
            retry_log=run.retry_log,
        )

    def _update_windowed(
        self, users, merchants, weights, remove_users, remove_merchants, timestamp
    ) -> UpdateReport:
        """Windowed delta: retract, append, expire, then refresh stale members."""
        config = self.config
        sampler: StableEdgeSampler = config.sampler
        acc = self._acc

        with Timer() as sampling_timer:
            if (remove_users is None) != (remove_merchants is None):
                raise DetectionError(
                    "remove_users and remove_merchants must be given together"
                )
            removed = (
                acc.retract(remove_users, remove_merchants)
                if remove_users is not None
                else np.empty(0, dtype=np.int64)
            )
            start, stop = acc.append(users, merchants, weights, timestamp=timestamp)
            expired = acc.expire()
            acc.maybe_compact()
            live = acc.window()
            key = sampler.derive_key(resolve_rng(config.seed))
            inclusion = sampler.stripe_inclusion(
                sampler.n_stripes(live.watermark), config.n_samples, key
            )
            changed = np.concatenate(
                [np.arange(start, stop, dtype=np.int64), removed, expired]
            )
            stale = self._stale_members(inclusion, changed, sampler.stripe)
            plans = [sampler.stripe_plan(inclusion[index]) for index in stale.tolist()]

        with Timer() as detection_timer:
            run = run_members(
                live.graph,
                plans,
                config.fdet,
                mode=config.executor,
                n_workers=config.n_workers,
                pool=self.pool,
                track_members=True,
                shared_memory=config.shared_memory,
                tolerance=config.tolerance,
                window=live.edge_window(),
                native_batch=config.native_batch,
                mmap=config.mmap,
            )

        stale_indices = stale.tolist()
        failures = self._merge_refreshed(run, stale_indices)
        self._graph = live.graph
        return UpdateReport(
            n_new_edges=stop - start,
            refreshed_samples=tuple(int(i) for i in stale_indices),
            n_samples=config.n_samples,
            sampling_seconds=sampling_timer.elapsed,
            detection_seconds=detection_timer.elapsed,
            failed_members=failures,
            stale_members=tuple(sorted(self._degraded)),
            retry_log=run.retry_log,
            n_removed_edges=int(removed.size),
            n_expired_edges=int(expired.size),
        )

    @staticmethod
    def _stale_members(
        inclusion: np.ndarray, changed_ids: np.ndarray, stripe: int
    ) -> np.ndarray:
        """Members whose stripe set intersects the changed append ids."""
        if not changed_ids.size:
            return np.empty(0, dtype=np.int64)
        delta_stripes = np.unique(changed_ids // stripe)
        return np.nonzero(inclusion[:, delta_stripes].any(axis=1))[0]

    def _merge_refreshed(
        self, run, stale_indices: list[int]
    ) -> tuple[MemberFailure, ...]:
        """Swap refreshed members' votes into the table; enforce the quorum."""
        config = self.config
        if run.failures and config.tolerance.min_quorum >= 1.0:
            _raise_first_failure(run)

        # remap positional failure indices back to global member indices
        failures = tuple(
            MemberFailure(
                index=stale_indices[failure.index],
                kind=failure.kind,
                error=failure.error,
                attempts=failure.attempts,
            )
            for failure in run.failures
        )

        table = self._table
        for position, index in enumerate(stale_indices):
            detection = run.detections[position]
            if detection is None:
                # refresh failed permanently: keep the member's previous
                # (now stale) votes rather than silently dropping them
                self._degraded.add(index)
                continue
            old = self._samples[index]
            fresh = _SampleState.from_detection(detection)
            _subtract_votes(table.user_votes, old.detected_users)
            _subtract_votes(table.merchant_votes, old.detected_merchants)
            _add_votes(table.user_votes, fresh.detected_users)
            _add_votes(table.merchant_votes, fresh.detected_merchants)
            if table.user_appearances is not None:
                _subtract_votes(table.user_appearances, old.sample_users)
                _subtract_votes(table.merchant_appearances, old.sample_merchants)
                _add_votes(table.user_appearances, fresh.sample_users)
                _add_votes(table.merchant_appearances, fresh.sample_merchants)
            self._samples[index] = fresh
            self._degraded.discard(index)

        fresh_members = config.n_samples - len(self._degraded)
        required = config.tolerance.required_survivors(config.n_samples)
        if fresh_members < required:
            kinds = sorted({failure.kind for failure in failures})
            raise QuorumError(
                f"only {fresh_members}/{config.n_samples} ensemble members "
                f"hold fresh state after this update ({len(self._degraded)} "
                f"stale: {sorted(self._degraded)}; failure kinds: "
                f"{', '.join(kinds) or 'carried over'}) — below the "
                f"configured quorum of {required} "
                f"(min_quorum={config.tolerance.min_quorum:g})"
            )
        return failures

    def update_edges(self, edges, weights=None) -> UpdateReport:
        """Convenience: :meth:`update` from ``(user, merchant)`` pairs."""
        pairs = list(edges)
        users = np.array([u for u, _ in pairs], dtype=np.int64)
        merchants = np.array([v for _, v in pairs], dtype=np.int64)
        return self.update(users, merchants, weights)

    def detect(self, threshold: int) -> DetectionResult:
        """Apply MVA at voting threshold ``T`` to the live vote table."""
        self._require_fitted()
        return majority_vote(self._table, threshold)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _config_dict(self) -> dict:
        config = self.config
        fdet = config.fdet
        sampler: StableEdgeSampler = config.sampler
        if type(fdet.metric) is not LogWeightedDensity:
            raise DetectionError(
                f"cannot persist state with metric {type(fdet.metric).__name__}; "
                "only the paper's LogWeightedDensity is serialisable"
            )
        if type(fdet.truncation) is not SecondDifferenceRule:
            raise DetectionError(
                f"cannot persist state with truncation {type(fdet.truncation).__name__}; "
                "only the default SecondDifferenceRule is serialisable"
            )
        return {
            "format": _CONFIG_FORMAT,
            "ensemble": {
                "n_samples": config.n_samples,
                "seed": config.seed,
                "executor": config.executor,
                "n_workers": config.n_workers,
                "track_appearances": config.track_appearances,
                "shared_memory": config.shared_memory,
                "shards": config.shards,
                "mmap": config.mmap,
                "tolerance": config.tolerance.as_dict(),
            },
            "sampler": {"ratio": sampler.ratio, "stripe": sampler.stripe},
            "fdet": {
                "metric_c": fdet.metric.c,
                "max_blocks": fdet.max_blocks,
                "weight_policy": fdet.weight_policy,
                "min_block_edges": fdet.min_block_edges,
                "min_density_ratio": fdet.min_density_ratio,
                "engine": fdet.engine,
            },
        }

    @staticmethod
    def _config_from_dict(payload: dict) -> EnsemFDetConfig:
        if payload.get("format") != _CONFIG_FORMAT:
            raise DetectionError(
                f"unsupported detection-state config format {payload.get('format')!r}"
            )
        fdet = payload["fdet"]
        ensemble = payload["ensemble"]
        sampler = payload["sampler"]
        return EnsemFDetConfig(
            sampler=StableEdgeSampler(sampler["ratio"], stripe=sampler["stripe"]),
            n_samples=ensemble["n_samples"],
            fdet=FdetConfig(
                metric=LogWeightedDensity(c=fdet["metric_c"]),
                max_blocks=fdet["max_blocks"],
                weight_policy=fdet["weight_policy"],
                min_block_edges=fdet["min_block_edges"],
                min_density_ratio=fdet["min_density_ratio"],
                engine=fdet["engine"],
            ),
            executor=ensemble["executor"],
            n_workers=ensemble["n_workers"],
            seed=ensemble["seed"],
            track_appearances=ensemble["track_appearances"],
            # absent in states saved before the zero-copy fan-out refactor
            shared_memory=ensemble.get("shared_memory", True),
            # absent in states saved before the sharded / out-of-core layer
            shards=ensemble.get("shards", 1),
            mmap=ensemble.get("mmap", False),
            # absent in states saved before the fault-tolerance layer
            tolerance=FaultTolerance.from_dict(ensemble.get("tolerance")),
        )

    def state(self) -> DetectionState:
        """Snapshot the warm state as a serialisable :class:`DetectionState`."""
        self._require_fitted()
        meta = dict(self.meta)
        if self._degraded:
            meta["degraded_members"] = sorted(self._degraded)
        else:
            meta.pop("degraded_members", None)
        graph = self._graph
        window = None
        edge_ids = None
        if self._acc is not None:
            # persist only the live rows; original append ids keep stripe
            # membership stable when the window resumes
            ws = self._acc.window_state()
            graph = ws["graph"]
            edge_ids = ws["edge_ids"]
            window = {
                "config": ws["config"],
                "watermark": ws["watermark"],
                "batches": ws["batches"],
            }
        return DetectionState(
            config=self._config_dict(),
            graph=graph,
            detected_users=[s.detected_users for s in self._samples],
            detected_merchants=[s.detected_merchants for s in self._samples],
            sample_users=[s.sample_users for s in self._samples],
            sample_merchants=[s.sample_merchants for s in self._samples],
            meta=meta,
            window=window,
            edge_ids=edge_ids,
        )

    def save(self, path) -> None:
        """Persist the warm state (graph + per-sample detections) to ``path``."""
        save_detection_state(self.state(), path)

    @classmethod
    def from_state(
        cls, state: DetectionState, pool: ReusablePool | None = None
    ) -> "IncrementalEnsemFDet":
        """Rebuild a live detector from a :class:`DetectionState`."""
        config = cls._config_from_dict(state.config)
        if state.n_samples != config.n_samples:
            raise DetectionError(
                f"state holds {state.n_samples} samples but config says "
                f"{config.n_samples}"
            )
        window_config = None
        if state.window is not None:
            window_config = WindowConfig.from_dict(state.window["config"])
        detector = cls(config, pool=pool, window=window_config)
        if window_config is not None:
            detector._acc = GraphAccumulator.restore_window(
                state.graph,
                window_config,
                edge_ids=state.edge_ids,
                watermark=int(state.window["watermark"]),
                batches=state.window["batches"],
            )
        detector.meta = dict(state.meta)
        detector._degraded = set(
            int(i) for i in detector.meta.pop("degraded_members", [])
        )
        detector._graph = state.graph
        detector._samples = [
            _SampleState(
                detected_users=du,
                detected_merchants=dm,
                sample_users=su,
                sample_merchants=sm,
            )
            for du, dm, su, sm in zip(
                state.detected_users,
                state.detected_merchants,
                state.sample_users,
                state.sample_merchants,
            )
        ]
        table = VoteTable.from_detections(
            [du.tolist() for du in state.detected_users],
            [dm.tolist() for dm in state.detected_merchants],
        )
        if config.track_appearances:
            table.attach_appearances(
                [su.tolist() for su in state.sample_users],
                [sm.tolist() for sm in state.sample_merchants],
            )
        detector._table = table
        return detector

    @classmethod
    def load(cls, path, pool: ReusablePool | None = None) -> "IncrementalEnsemFDet":
        """Rebuild a live detector from a saved state archive."""
        return cls.from_state(load_detection_state(path), pool=pool)

    @classmethod
    def load_with_recovery(
        cls, path, pool: ReusablePool | None = None
    ) -> tuple["IncrementalEnsemFDet", str | None]:
        """Like :meth:`load`, falling back to the ``.bak`` snapshot.

        When the primary archive is corrupt (checksum mismatch, truncated
        write, flipped bytes) but its rolling backup still verifies, the
        detector is rebuilt from the backup. Returns the detector plus the
        path actually loaded when recovery kicked in (``None`` for a clean
        primary load). Raises :class:`~repro.errors.StateChecksumError`
        when both copies are unreadable.
        """
        state, recovered_from = load_detection_state_with_recovery(path)
        return cls.from_state(state, pool=pool), recovered_from
