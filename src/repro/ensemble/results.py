"""Result containers for ensemble detection, and the on-disk state format.

Besides the :class:`DetectionResult` value object this module defines the
persistence layer for *warm* detection state: :class:`DetectionState`
bundles everything an incremental detector needs to resume scoring after a
restart — the accumulated graph, each ensemble member's last detection and
sample contents, and a JSON-able config fingerprint — and
:func:`save_detection_state` / :func:`load_detection_state` round-trip it
through a single ``.npz`` archive (ragged per-sample arrays are packed as
one concatenated array plus offsets).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import DetectionError
from ..graph import BipartiteGraph

__all__ = [
    "DetectionResult",
    "DetectionState",
    "save_detection_state",
    "load_detection_state",
]

#: bumped whenever the archive layout changes incompatibly
STATE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class DetectionResult:
    """Final output of a fraud detector: the flagged node labels.

    ``user_labels`` / ``merchant_labels`` are sorted unique global labels of
    the original graph (the paper's ``U_final`` and ``V_final``).
    """

    user_labels: np.ndarray
    merchant_labels: np.ndarray

    @property
    def n_users(self) -> int:
        """Number of flagged users (detected PINs)."""
        return int(self.user_labels.size)

    @property
    def n_merchants(self) -> int:
        """Number of flagged merchants."""
        return int(self.merchant_labels.size)

    def user_set(self) -> set[int]:
        """Flagged users as a python set (handy for metric code)."""
        return set(self.user_labels.tolist())

    def merchant_set(self) -> set[int]:
        """Flagged merchants as a python set."""
        return set(self.merchant_labels.tolist())

    @classmethod
    def empty(cls) -> "DetectionResult":
        """A detection that flagged nothing."""
        return cls(
            user_labels=np.empty(0, dtype=np.int64),
            merchant_labels=np.empty(0, dtype=np.int64),
        )


@dataclass
class DetectionState:
    """Warm per-sample detection state of a fitted ensemble.

    Attributes
    ----------
    config:
        JSON-able fingerprint of the ensemble configuration (built and
        interpreted by :class:`repro.ensemble.IncrementalEnsemFDet`).
    graph:
        The accumulated input graph the state was last synchronised with.
    detected_users, detected_merchants:
        Per-sample arrays of detected node labels (length ``N`` lists).
    sample_users, sample_merchants:
        Per-sample arrays of the node labels each sampled subgraph
        *contained* (needed to refresh appearance-normalised voting).
    meta:
        Free-form JSON-able annotations carried alongside the state (e.g.
        the ``watch`` CLI records how many rows of its source file are
        already ingested). Preserved verbatim across save/load.
    """

    config: dict
    graph: BipartiteGraph
    detected_users: list[np.ndarray]
    detected_merchants: list[np.ndarray]
    sample_users: list[np.ndarray]
    sample_merchants: list[np.ndarray]
    meta: dict = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        """Ensemble size ``N``."""
        return len(self.detected_users)


def _pack_ragged(arrays: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate int64 arrays and record the split offsets."""
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    if arrays:
        flat = np.concatenate([np.asarray(a, dtype=np.int64) for a in arrays])
    else:
        flat = np.empty(0, dtype=np.int64)
    return flat, offsets


def _unpack_ragged(flat: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    return [
        flat[offsets[i] : offsets[i + 1]].astype(np.int64, copy=False)
        for i in range(offsets.size - 1)
    ]


def save_detection_state(state: DetectionState, path: str | os.PathLike[str]) -> None:
    """Serialise a :class:`DetectionState` to one compressed ``.npz``."""
    graph = state.graph
    arrays: dict[str, np.ndarray] = {
        "format_version": np.array([STATE_FORMAT_VERSION], dtype=np.int64),
        "config_json": np.frombuffer(
            json.dumps(state.config, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        "meta_json": np.frombuffer(
            json.dumps(state.meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        "graph_sizes": np.array([graph.n_users, graph.n_merchants], dtype=np.int64),
        "edge_users": graph.edge_users,
        "edge_merchants": graph.edge_merchants,
        "user_labels": graph.user_labels,
        "merchant_labels": graph.merchant_labels,
    }
    if graph.edge_weights is not None:
        arrays["edge_weights"] = graph.edge_weights
    for name, ragged in (
        ("detected_users", state.detected_users),
        ("detected_merchants", state.detected_merchants),
        ("sample_users", state.sample_users),
        ("sample_merchants", state.sample_merchants),
    ):
        flat, offsets = _pack_ragged(ragged)
        arrays[f"{name}_flat"] = flat
        arrays[f"{name}_offsets"] = offsets
    np.savez_compressed(Path(path), **arrays)


def load_detection_state(path: str | os.PathLike[str]) -> DetectionState:
    """Load a state archive written by :func:`save_detection_state`."""
    path = Path(path)
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != STATE_FORMAT_VERSION:
            raise DetectionError(
                f"{path}: detection-state format v{version} is not supported "
                f"(this build reads v{STATE_FORMAT_VERSION})"
            )
        config = json.loads(bytes(data["config_json"].tobytes()).decode("utf-8"))
        meta = json.loads(bytes(data["meta_json"].tobytes()).decode("utf-8"))
        graph = BipartiteGraph(
            n_users=int(data["graph_sizes"][0]),
            n_merchants=int(data["graph_sizes"][1]),
            edge_users=data["edge_users"],
            edge_merchants=data["edge_merchants"],
            edge_weights=data["edge_weights"] if "edge_weights" in data else None,
            user_labels=data["user_labels"],
            merchant_labels=data["merchant_labels"],
        )
        ragged = {
            name: _unpack_ragged(data[f"{name}_flat"], data[f"{name}_offsets"])
            for name in (
                "detected_users",
                "detected_merchants",
                "sample_users",
                "sample_merchants",
            )
        }
    counts = {name: len(values) for name, values in ragged.items()}
    if len(set(counts.values())) != 1:
        raise DetectionError(f"{path}: inconsistent per-sample array counts {counts}")
    return DetectionState(config=config, graph=graph, meta=meta, **ragged)
