"""Result containers for ensemble detection."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DetectionResult"]


@dataclass(frozen=True)
class DetectionResult:
    """Final output of a fraud detector: the flagged node labels.

    ``user_labels`` / ``merchant_labels`` are sorted unique global labels of
    the original graph (the paper's ``U_final`` and ``V_final``).
    """

    user_labels: np.ndarray
    merchant_labels: np.ndarray

    @property
    def n_users(self) -> int:
        """Number of flagged users (detected PINs)."""
        return int(self.user_labels.size)

    @property
    def n_merchants(self) -> int:
        """Number of flagged merchants."""
        return int(self.merchant_labels.size)

    def user_set(self) -> set[int]:
        """Flagged users as a python set (handy for metric code)."""
        return set(self.user_labels.tolist())

    def merchant_set(self) -> set[int]:
        """Flagged merchants as a python set."""
        return set(self.merchant_labels.tolist())

    @classmethod
    def empty(cls) -> "DetectionResult":
        """A detection that flagged nothing."""
        return cls(
            user_labels=np.empty(0, dtype=np.int64),
            merchant_labels=np.empty(0, dtype=np.int64),
        )
