"""Result containers for ensemble detection, and the on-disk state format.

Besides the :class:`DetectionResult` value object this module defines the
persistence layer for *warm* detection state: :class:`DetectionState`
bundles everything an incremental detector needs to resume scoring after a
restart — the accumulated graph, each ensemble member's last detection and
sample contents, and a JSON-able config fingerprint — and
:func:`save_detection_state` / :func:`load_detection_state` round-trip it
through a single ``.npz`` archive (ragged per-sample arrays are packed as
one concatenated array plus offsets).

Persistence is crash-safe:

* **Atomic commit** — the archive is written to a ``.tmp`` sibling,
  fsynced, and renamed over the target (``os.replace``); the previous
  snapshot is first rotated to a rolling ``.bak``. A crash at any byte
  leaves either the old snapshot, the backup, or both on disk — never a
  half-written primary.
* **Integrity** — since format v2 a per-array CRC-32 manifest is stored;
  any byte flip in the payload fails either the zip container's own CRC or
  the manifest and surfaces as :class:`~repro.errors.StateChecksumError`,
  never as a silently-wrong vote table. v1 archives (pre-checksum) still
  load.
* **Windowing** — format v3 optionally records a rolling-window
  configuration, the live-edge watermark/batch records, and each live
  edge's original append id, so a windowed detector resumes with stable
  stripe membership. v1/v2 archives (append-only, no window) still load.
* **Compact dtypes** — format v4 stores index arrays (edge endpoints,
  per-sample node lists, edge ids) as ``int32`` when their values fit, and
  weights as ``float32`` when the ``float64`` round-trip is bit-exact —
  storage-only narrowing, mirroring the
  :class:`~repro.graph.GraphStore` dtype policy. Loaders upcast back to
  ``int64``/``float64``, so results are unchanged; v1–v3 archives (all
  wide) still load.
* **Recovery** — :func:`load_detection_state_with_recovery` falls back to
  the ``.bak`` snapshot when the primary is corrupt or missing, which is
  what the ``watch``/``update`` CLI uses to resume after a crash.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import DetectionError, StateChecksumError, StateError
from ..faults import fault_point
from ..graph import BipartiteGraph
from ..graph.store import (
    _narrow_index_column,
    _narrow_value_column,
    _narrow_weight_column,
)
from ..logging_utils import get_logger

logger = get_logger("state")

__all__ = [
    "DetectionResult",
    "DetectionState",
    "save_detection_state",
    "load_detection_state",
    "load_detection_state_with_recovery",
    "state_backup_path",
]

#: bumped whenever the archive layout changes incompatibly
STATE_FORMAT_VERSION = 4

#: older formats this build still reads
#: (v1: no checksum manifest; v2: no window metadata; v3: wide dtypes only)
_LEGACY_FORMAT_VERSIONS = (1, 2, 3)


@dataclass(frozen=True)
class DetectionResult:
    """Final output of a fraud detector: the flagged node labels.

    ``user_labels`` / ``merchant_labels`` are sorted unique global labels of
    the original graph (the paper's ``U_final`` and ``V_final``).
    """

    user_labels: np.ndarray
    merchant_labels: np.ndarray

    @property
    def n_users(self) -> int:
        """Number of flagged users (detected PINs)."""
        return int(self.user_labels.size)

    @property
    def n_merchants(self) -> int:
        """Number of flagged merchants."""
        return int(self.merchant_labels.size)

    def user_set(self) -> set[int]:
        """Flagged users as a python set (handy for metric code)."""
        return set(self.user_labels.tolist())

    def merchant_set(self) -> set[int]:
        """Flagged merchants as a python set."""
        return set(self.merchant_labels.tolist())

    @classmethod
    def empty(cls) -> "DetectionResult":
        """A detection that flagged nothing."""
        return cls(
            user_labels=np.empty(0, dtype=np.int64),
            merchant_labels=np.empty(0, dtype=np.int64),
        )


@dataclass
class DetectionState:
    """Warm per-sample detection state of a fitted ensemble.

    Attributes
    ----------
    config:
        JSON-able fingerprint of the ensemble configuration (built and
        interpreted by :class:`repro.ensemble.IncrementalEnsemFDet`).
    graph:
        The accumulated input graph the state was last synchronised with.
    detected_users, detected_merchants:
        Per-sample arrays of detected node labels (length ``N`` lists).
    sample_users, sample_merchants:
        Per-sample arrays of the node labels each sampled subgraph
        *contained* (needed to refresh appearance-normalised voting).
    meta:
        Free-form JSON-able annotations carried alongside the state (e.g.
        the ``watch`` CLI records how many rows of its source file are
        already ingested). Preserved verbatim across save/load.
    window:
        ``None`` for append-only detectors. For windowed detectors, a
        JSON-able dict ``{"config": ..., "watermark": ..., "batches": ...}``
        describing the rolling window (see
        :meth:`repro.graph.GraphAccumulator.window_state`); ``graph`` then
        holds only the *live* edges.
    edge_ids:
        Original append ids of ``graph``'s rows (int64, strictly
        increasing) when ``window`` is set; ``None`` otherwise. These keep
        stripe-hash sample membership stable across expiry/compaction.
    """

    config: dict
    graph: BipartiteGraph
    detected_users: list[np.ndarray]
    detected_merchants: list[np.ndarray]
    sample_users: list[np.ndarray]
    sample_merchants: list[np.ndarray]
    meta: dict = field(default_factory=dict)
    window: dict | None = None
    edge_ids: np.ndarray | None = None

    @property
    def n_samples(self) -> int:
        """Ensemble size ``N``."""
        return len(self.detected_users)


def _pack_ragged(arrays: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate int64 arrays and record the split offsets."""
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    if arrays:
        flat = np.concatenate([np.asarray(a, dtype=np.int64) for a in arrays])
    else:
        flat = np.empty(0, dtype=np.int64)
    return flat, offsets


def _unpack_ragged(flat: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    return [
        flat[offsets[i] : offsets[i + 1]].astype(np.int64, copy=False)
        for i in range(offsets.size - 1)
    ]


def _array_crc(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def _npz_path(path: str | os.PathLike[str]) -> Path:
    # mirror np.savez's implicit suffix so save and load agree on the name
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def state_backup_path(path: str | os.PathLike[str]) -> Path:
    """The rolling backup sibling of a state archive.

    Named ``<stem>.bak.npz`` (not ``…npz.bak``) so the backup is itself a
    well-formed archive path: every loader normalises through
    :func:`_npz_path`, which must leave the backup name untouched.
    """
    path = _npz_path(path)
    return path.with_name(path.name[: -len(".npz")] + ".bak.npz")


def _fsync_directory(directory: Path) -> None:
    """Make renames inside ``directory`` durable (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_detection_state(state: DetectionState, path: str | os.PathLike[str]) -> None:
    """Serialise a :class:`DetectionState` to one compressed ``.npz``.

    The write is atomic: bytes land in a ``.tmp`` sibling first (fsynced),
    any existing snapshot is rotated to ``.bak``, and the tmp file is
    renamed into place. A crash at any point leaves a loadable snapshot —
    the previous one, its backup, or the new one — never a torn file.
    """
    graph = state.graph
    arrays: dict[str, np.ndarray] = {
        "format_version": np.array([STATE_FORMAT_VERSION], dtype=np.int64),
        "config_json": np.frombuffer(
            json.dumps(state.config, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        "meta_json": np.frombuffer(
            json.dumps(state.meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        "graph_sizes": np.array([graph.n_users, graph.n_merchants], dtype=np.int64),
        # storage-only narrowing (GraphStore dtype policy): loaders upcast
        "edge_users": _narrow_index_column(graph.edge_users, graph.n_users),
        "edge_merchants": _narrow_index_column(graph.edge_merchants, graph.n_merchants),
        "user_labels": _narrow_value_column(graph.user_labels),
        "merchant_labels": _narrow_value_column(graph.merchant_labels),
    }
    if graph.edge_weights is not None:
        arrays["edge_weights"] = _narrow_weight_column(graph.edge_weights)
    if state.window is not None:
        if state.edge_ids is None:
            raise StateError("windowed state requires edge_ids alongside window metadata")
        arrays["window_json"] = np.frombuffer(
            json.dumps(state.window, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        arrays["edge_ids"] = _narrow_value_column(
            np.asarray(state.edge_ids, dtype=np.int64)
        )
    for name, ragged in (
        ("detected_users", state.detected_users),
        ("detected_merchants", state.detected_merchants),
        ("sample_users", state.sample_users),
        ("sample_merchants", state.sample_merchants),
    ):
        flat, offsets = _pack_ragged(ragged)
        arrays[f"{name}_flat"] = _narrow_value_column(flat)
        arrays[f"{name}_offsets"] = offsets
    checksums = {name: _array_crc(array) for name, array in arrays.items()}
    arrays["checksums_json"] = np.frombuffer(
        json.dumps(checksums, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )

    path = _npz_path(path)
    tmp = path.with_name(path.name + ".tmp")
    backup = state_backup_path(path)
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point("state.write", stage="tmp_written", path=str(path))
        if path.exists():
            os.replace(path, backup)
            _fsync_directory(path.parent)
        fault_point("state.write", stage="backup_done", path=str(path))
        os.replace(tmp, path)
        _fsync_directory(path.parent)
        fault_point("state.write", stage="committed", path=str(path))
    except BaseException:
        # never leave a stray tmp behind on a surfaced failure (a hard
        # crash may — the next save simply overwrites it)
        tmp.unlink(missing_ok=True)
        raise


def _verify_checksums(path: Path, data) -> None:
    try:
        manifest = json.loads(bytes(data["checksums_json"].tobytes()).decode("utf-8"))
    except KeyError:
        raise StateChecksumError(
            f"{path}: v{STATE_FORMAT_VERSION} archive is missing its checksum "
            "manifest — the file is corrupt or was tampered with"
        ) from None
    for name, expected in manifest.items():
        actual = _array_crc(data[name])
        if actual != int(expected):
            raise StateChecksumError(
                f"{path}: checksum mismatch on array {name!r} "
                f"(stored {int(expected):#010x}, computed {actual:#010x}); "
                "the snapshot is corrupt — recover from the .bak backup or re-fit"
            )


def _read_state(path: Path) -> DetectionState:
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != STATE_FORMAT_VERSION and version not in _LEGACY_FORMAT_VERSIONS:
            raise StateError(
                f"{path}: detection-state format v{version} is not supported "
                f"(this build reads v{STATE_FORMAT_VERSION} and legacy "
                f"{list(_LEGACY_FORMAT_VERSIONS)})"
            )
        if version >= 2:
            _verify_checksums(path, data)
        config = json.loads(bytes(data["config_json"].tobytes()).decode("utf-8"))
        meta = json.loads(bytes(data["meta_json"].tobytes()).decode("utf-8"))
        graph = BipartiteGraph(
            n_users=int(data["graph_sizes"][0]),
            n_merchants=int(data["graph_sizes"][1]),
            edge_users=data["edge_users"],
            edge_merchants=data["edge_merchants"],
            edge_weights=data["edge_weights"] if "edge_weights" in data else None,
            user_labels=data["user_labels"],
            merchant_labels=data["merchant_labels"],
        )
        window = None
        edge_ids = None
        if "window_json" in data:
            window = json.loads(bytes(data["window_json"].tobytes()).decode("utf-8"))
            if "edge_ids" not in data:
                raise StateChecksumError(
                    f"{path}: windowed archive is missing its edge_ids array"
                )
            edge_ids = data["edge_ids"].astype(np.int64, copy=False)
        ragged = {
            name: _unpack_ragged(data[f"{name}_flat"], data[f"{name}_offsets"])
            for name in (
                "detected_users",
                "detected_merchants",
                "sample_users",
                "sample_merchants",
            )
        }
    counts = {name: len(values) for name, values in ragged.items()}
    if len(set(counts.values())) != 1:
        raise StateChecksumError(
            f"{path}: inconsistent per-sample array counts {counts}"
        )
    return DetectionState(
        config=config, graph=graph, meta=meta, window=window, edge_ids=edge_ids, **ragged
    )


def load_detection_state(path: str | os.PathLike[str]) -> DetectionState:
    """Load a state archive written by :func:`save_detection_state`.

    Any corruption — a zero-byte or truncated file (the classic ENOSPC
    leftovers: ``zipfile.BadZipFile``, ``EOFError``, ``zlib.error``), a
    flipped byte anywhere in the payload (caught by the zip container's
    CRC or the v2 per-array manifest), unreadable JSON — raises
    :class:`~repro.errors.StateChecksumError`; raw decoder exceptions
    never escape. An unsupported format version raises
    :class:`~repro.errors.StateError`. A missing file raises
    ``FileNotFoundError`` (it is not corruption).
    """
    path = _npz_path(path)
    try:
        return _read_state(path)
    except (DetectionError, FileNotFoundError):
        raise
    except Exception as exc:
        raise StateChecksumError(
            f"{path}: state archive is unreadable "
            f"({type(exc).__name__}: {exc}); the snapshot is corrupt or "
            "truncated — recover from the .bak backup or re-fit"
        ) from exc


def load_detection_state_with_recovery(
    path: str | os.PathLike[str],
) -> tuple[DetectionState, str | None]:
    """Load a state archive, falling back to its rolling ``.bak``.

    Returns ``(state, recovered_from)`` where ``recovered_from`` is the
    backup path when the primary was corrupt or missing and the backup
    verified, or ``None`` for a clean primary load. Raises
    ``FileNotFoundError`` when neither file exists and
    :class:`~repro.errors.StateChecksumError` when both exist but neither
    verifies.
    """
    path = _npz_path(path)
    backup = state_backup_path(path)
    try:
        return load_detection_state(path), None
    except FileNotFoundError:
        if not backup.exists():
            raise
        logger.warning(
            "state archive %s is missing; recovering from backup %s", path, backup
        )
        return load_detection_state(backup), str(backup)
    except (StateError, StateChecksumError) as primary_error:
        if not backup.exists():
            raise
        logger.warning(
            "state archive %s failed to load (%s); recovering from backup %s",
            path,
            primary_error,
            backup,
        )
        try:
            return load_detection_state(backup), str(backup)
        except (StateError, StateChecksumError, FileNotFoundError) as backup_error:
            raise StateChecksumError(
                f"{path}: both the snapshot and its backup are unreadable "
                f"(primary: {primary_error}; backup: {backup_error}); "
                "the state cannot be recovered — re-fit from the source data"
            ) from backup_error
