"""Vote aggregation (paper Definition 4: Majority Voting Aggregation).

Each of the ``N`` per-sample FDET runs nominates suspicious user/merchant
labels; :class:`VoteTable` tallies how often each label was nominated, and
the aggregators turn tallies into final detections:

* :func:`majority_vote` — the paper's MVA: accept when votes ≥ ``T``.
* :func:`normalized_majority_vote` — ablation variant that divides a node's
  votes by the number of samples the node actually *appeared in* (a node can
  only be nominated when sampling put it in the subgraph; this corrects the
  bias against rarely-sampled nodes, at the cost of amplifying noise from
  nodes seen once).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import AggregationError
from .results import DetectionResult

__all__ = ["VoteTable", "majority_vote", "normalized_majority_vote"]


def _tally(label_sets: Sequence[Iterable[int]]) -> Counter[int]:
    counter: Counter[int] = Counter()
    for labels in label_sets:
        counter.update(int(label) for label in labels)
    return counter


@dataclass
class VoteTable:
    """Per-label vote counts from ``N`` ensemble members.

    Attributes
    ----------
    n_samples:
        The ensemble size ``N`` (upper bound for any count).
    user_votes, merchant_votes:
        ``label -> number of samples that detected it``.
    user_appearances, merchant_appearances:
        Optional ``label -> number of samples that contained it`` maps,
        needed only by the normalised aggregator.
    """

    n_samples: int
    user_votes: Counter[int] = field(default_factory=Counter)
    merchant_votes: Counter[int] = field(default_factory=Counter)
    user_appearances: Counter[int] | None = None
    merchant_appearances: Counter[int] | None = None

    @classmethod
    def from_detections(
        cls,
        user_label_sets: Sequence[Iterable[int]],
        merchant_label_sets: Sequence[Iterable[int]],
    ) -> "VoteTable":
        """Tally one detection (set of labels) per ensemble member."""
        if len(user_label_sets) != len(merchant_label_sets):
            raise AggregationError(
                "user and merchant detection lists must have the same length "
                f"({len(user_label_sets)} vs {len(merchant_label_sets)})"
            )
        return cls(
            n_samples=len(user_label_sets),
            user_votes=_tally(user_label_sets),
            merchant_votes=_tally(merchant_label_sets),
        )

    def attach_appearances(
        self,
        user_label_sets: Sequence[Iterable[int]],
        merchant_label_sets: Sequence[Iterable[int]],
    ) -> None:
        """Record which labels each sampled subgraph *contained*."""
        if len(user_label_sets) != self.n_samples or len(merchant_label_sets) != self.n_samples:
            raise AggregationError("appearance lists must match n_samples")
        self.user_appearances = _tally(user_label_sets)
        self.merchant_appearances = _tally(merchant_label_sets)

    def max_user_votes(self) -> int:
        """Highest vote count any user received (0 when nothing was voted)."""
        return max(self.user_votes.values(), default=0)

    def vote_histogram(self) -> dict[int, int]:
        """``votes -> number of users with that many votes`` (diagnostics)."""
        histogram: Counter[int] = Counter(self.user_votes.values())
        return dict(sorted(histogram.items()))


def _accepted(votes: Counter[int], threshold: int) -> np.ndarray:
    labels = [label for label, count in votes.items() if count >= threshold]
    return np.array(sorted(labels), dtype=np.int64)


def majority_vote(table: VoteTable, threshold: int) -> DetectionResult:
    """The paper's MVA: accept node ``u`` iff ``Σ_i h_i(u) ≥ T``."""
    if threshold < 1:
        raise AggregationError(f"voting threshold T must be >= 1, got {threshold}")
    return DetectionResult(
        user_labels=_accepted(table.user_votes, threshold),
        merchant_labels=_accepted(table.merchant_votes, threshold),
    )


def normalized_majority_vote(
    table: VoteTable, fraction: float, min_appearances: int = 1
) -> DetectionResult:
    """Accept when ``votes / appearances ≥ fraction``.

    Requires appearance counts (see :meth:`VoteTable.attach_appearances`).
    ``min_appearances`` suppresses nodes sampled too rarely for their vote
    fraction to mean anything.
    """
    if not 0.0 < fraction <= 1.0:
        raise AggregationError(f"fraction must be in (0, 1], got {fraction}")
    if table.user_appearances is None or table.merchant_appearances is None:
        raise AggregationError(
            "normalized vote needs appearance counts; call attach_appearances() first"
        )

    def accept(votes: Counter[int], appearances: Counter[int]) -> np.ndarray:
        labels = [
            label
            for label, count in votes.items()
            if appearances[label] >= min_appearances
            and count / appearances[label] >= fraction
        ]
        return np.array(sorted(labels), dtype=np.int64)

    return DetectionResult(
        user_labels=accept(table.user_votes, table.user_appearances),
        merchant_labels=accept(table.merchant_votes, table.merchant_appearances),
    )
