"""Parallel execution of FDET across sampled subgraphs (paper Fig. 2).

Two fan-out shapes live here:

* :func:`detect_on_plans` — the **zero-copy** pipeline used by
  :class:`~repro.ensemble.EnsemFDet`. The parent keeps the graph in one
  frozen :class:`~repro.graph.GraphStore`; for the process backend the
  store is exported to a shared-memory segment (or, with ``mmap=True`` /
  a file-backed store, spilled once to an mmap-able store file), workers
  attach **once per process** (pool initializer for one-shot pools, a
  process-local cache for :class:`~repro.parallel.ReusablePool` workers)
  and each compact :class:`~repro.sampling.SamplePlan` is materialized
  worker-side through the trusted constructor — zero graph bytes are
  pickled per ensemble member, only the ~1%-sized plans and a ~100-byte
  :class:`~repro.graph.StoreLayout` descriptor. A parent opened straight
  from a store file (:meth:`GraphStore.open`) ships just its path+layout:
  workers map the same file lazily, so out-of-core graphs never
  materialize in any process. Serial and thread backends skip the
  segment and materialize against the in-process graph directly.
* :func:`detect_on_samples` — the historical eager shape, mapping already
  materialized subgraphs. Kept for callers that hold real subgraphs (and
  as the reference the plan pipeline is parity-tested against).

Both are thin shells over :func:`run_members`, the fault-tolerant member
engine. Every attempt records which members ran and which failed; failed
members are retried under the :class:`~repro.parallel.FaultTolerance`
policy — per-member wall-clock timeouts (hung workers are SIGKILLed and
the pool respawned), bounded deterministic backoff, automatic backend
degradation (process → thread → serial) and shared-memory → pickled-store
fallback — and whatever still fails after the last round comes back as a
typed :class:`MemberFailure` instead of an exception. The parent-side
shared segment is unlinked on **every** exit path (normal, crash, timeout,
KeyboardInterrupt), backstopped by the store's ``weakref.finalize``.

Because plans re-materialize deterministically, a member that fails and
then succeeds on retry produces a detection bitwise-identical to a
fault-free run — the invariant the chaos suite pins down.

Results come back in sample order regardless of backend, and
``track_members=False`` skips recording each sample's node labels when no
aggregator needs them (appearance-normalised voting and the incremental
layer do; plain MVA does not).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time as _time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..errors import GraphError, InjectedFault, MemberTimeoutError, WorkerCrashError
from ..faults import fault_point
from ..fdet import Fdet, FdetConfig, FdetResult
from ..fdet import batched as _batched
from ..fdet._native import native_threads
from ..graph import BipartiteGraph, GraphStore, StoreLayout, attached_store
from ..parallel import (
    ExecutorMode,
    FaultTolerance,
    ReusablePool,
    default_workers,
    kill_executor_workers,
    parallel_map,
)
from ..graph.window import EdgeWindow
from ..parallel.executor import _process_context
from ..sampling import SamplePlan, materialize_plan

__all__ = [
    "detect_on_samples",
    "detect_on_plans",
    "run_members",
    "SampleDetection",
    "MemberFailure",
    "MemberRun",
]

#: failure classification recorded per member
FAIL_CRASH = "crash"  # the worker process died under the member
FAIL_TIMEOUT = "timeout"  # the member (chunk) exceeded its wall-clock budget
FAIL_SHM = "shm"  # the worker could not attach the shared graph segment
FAIL_ERROR = "error"  # the member's own code raised


@dataclass(frozen=True)
class SampleDetection:
    """FDET output for one sampled subgraph, plus (optionally) its contents.

    ``sample_users`` / ``sample_merchants`` are only populated when the
    caller asked for member tracking — a fit at ``N=80`` would otherwise
    keep every sampled label array alive in the result for nothing.

    ``detected_user_indices`` / ``detected_merchant_indices`` are parent
    node-index arrays of the truncated detection, populated only by the
    batched native backend; they feed the native vote merge and are
    excluded from equality so detections compare identically across
    backends.
    """

    result: FdetResult
    sample_users: tuple[int, ...] | None = None
    sample_merchants: tuple[int, ...] | None = None
    detected_user_indices: np.ndarray | None = field(default=None, compare=False, repr=False)
    detected_merchant_indices: np.ndarray | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class MemberFailure:
    """One ensemble member that still had no detection after every retry."""

    index: int
    kind: str  # one of FAIL_CRASH / FAIL_TIMEOUT / FAIL_SHM / FAIL_ERROR
    error: str
    attempts: int

    def as_dict(self) -> dict:
        """JSON-able form (for ``Detection.meta`` / state annotations)."""
        return {
            "index": self.index,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class MemberRun:
    """Everything one fault-tolerant fan-out produced.

    ``detections[i]`` is ``None`` exactly when member ``i`` appears in
    ``failures``. ``retry_log`` holds one JSON-able dict per attempt —
    which members ran, on what backend/transport, and which failed with
    what kind — and is deterministic for a fixed seed + fault plan.
    ``errors`` keeps the last raw exception per failed member so strict
    callers can re-raise the original object.
    """

    detections: list[SampleDetection | None]
    failures: tuple[MemberFailure, ...]
    retry_log: tuple[dict, ...]
    errors: dict[int, BaseException] | None = None

    @property
    def n_failed(self) -> int:
        """Members with no detection after all retries."""
        return len(self.failures)

    @property
    def n_retries(self) -> int:
        """Extra attempts beyond the first."""
        return max(0, len(self.retry_log) - 1)

    def survivors(self) -> list[SampleDetection]:
        """The detections that made it, in member order."""
        return [d for d in self.detections if d is not None]


def _detection(fdet: Fdet, graph: BipartiteGraph, track_members: bool) -> SampleDetection:
    result = fdet.detect(graph)
    if not track_members:
        return SampleDetection(result=result)
    return SampleDetection(
        result=result,
        sample_users=tuple(graph.user_labels.tolist()),
        sample_merchants=tuple(graph.merchant_labels.tolist()),
    )


def _detect_one(args: tuple[BipartiteGraph, FdetConfig, bool]) -> SampleDetection:
    graph, config, track_members = args
    return _detection(Fdet(config), graph, track_members)


def _detect_chunk(
    args: tuple[FdetConfig, list[BipartiteGraph], bool]
) -> list[SampleDetection]:
    config, graphs, track_members = args
    fdet = Fdet(config)
    return [_detection(fdet, graph, track_members) for graph in graphs]


def _resolve_parent(
    source: BipartiteGraph | GraphStore | StoreLayout,
    window: EdgeWindow | None,
) -> tuple[BipartiteGraph, EdgeWindow | None]:
    """The parent graph (and liveness overlay) a worker materializes against.

    A :class:`StoreLayout` resolves through the process-local attachment
    cache (first touch maps the segment, later chunks and later fits on
    the same segment are dictionary hits); a pickled :class:`GraphStore`
    is the no-shared-memory fallback; a :class:`BipartiteGraph` arrives
    only on in-process backends. Stores carry their window columns in the
    segment itself, so ``window`` is only consulted for in-process graphs.
    """
    if isinstance(source, StoreLayout):
        store = attached_store(source)
        return store.to_graph(), store.edge_window()
    if isinstance(source, GraphStore):
        return source.to_graph(), source.edge_window()
    return source, window


def _attach_worker(layout: StoreLayout) -> None:
    """Pool initializer: map the shared segment once, at worker spawn."""
    attached_store(layout)


def _native_detection(nd: "_batched.NativeDetection", track_members: bool) -> SampleDetection:
    """Wrap one batched-kernel output like :func:`_detection` would."""
    return SampleDetection(
        result=nd.result,
        sample_users=tuple(nd.user_labels.tolist()) if track_members else None,
        sample_merchants=tuple(nd.merchant_labels.tolist()) if track_members else None,
        detected_user_indices=nd.detected_user_indices,
        detected_merchant_indices=nd.detected_merchant_indices,
    )


def _batch_detect_many(
    graph: BipartiteGraph,
    batch_work: list[tuple[int, SamplePlan]],
    config: FdetConfig,
    window: EdgeWindow | None,
    threads: int,
) -> list["_batched.NativeDetection | None"]:
    """One guarded kernel call; a refusal or error falls back per member."""
    try:
        native = _batched.detect_many(
            graph, [plan for _, plan in batch_work], config, window, threads
        )
    except Exception:  # noqa: BLE001 - batch is an optimization, never a failure source
        native = None
    return native if native is not None else [None] * len(batch_work)


def _detect_member_chunk(
    args: tuple[
        BipartiteGraph | GraphStore | StoreLayout,
        FdetConfig,
        list[tuple[int, SamplePlan]],
        bool,
        int,
        EdgeWindow | None,
        bool,
        int,
    ]
) -> list[tuple[int, SampleDetection]]:
    """Run a chunk of ``(member_index, plan)`` pairs in whatever process.

    The per-member injection points fire *inside* the worker, so chaos
    plans exercise the real fan-out path (chunk pickling, segment attach,
    materialization) unmodified. With the batched native backend enabled,
    eligible members of the chunk run through one multi-member kernel call
    (``native_threads`` wide); ineligible plans, ineligible configs and
    members whose kernel slot reports an allocation failure take the
    per-member materialize-and-detect path, bitwise identically.
    """
    source, config, members, track_members, attempt, window, native_batch, threads = args
    graph, window = _resolve_parent(source, window)
    fdet = Fdet(config)
    use_batch = (
        native_batch
        and _batched.config_eligible(config)
        and _batched.batch_kernels() is not None
    )
    out: list[tuple[int, SampleDetection]] = []
    batch_work: list[tuple[int, SamplePlan]] = []
    for index, plan in members:
        fault_point("member.detect", index=index, attempt=attempt)
        if use_batch and _batched.plan_eligible(plan):
            fault_point("native.peel", index=index, attempt=attempt)
            batch_work.append((index, plan))
            continue
        subgraph = materialize_plan(graph, plan, window)
        out.append((index, _detection(fdet, subgraph, track_members)))
    if batch_work:
        native = _batch_detect_many(graph, batch_work, config, window, threads)
        for (index, plan), nd in zip(batch_work, native):
            if nd is None:
                subgraph = materialize_plan(graph, plan, window)
                out.append((index, _detection(fdet, subgraph, track_members)))
            else:
                out.append((index, _native_detection(nd, track_members)))
    return out


def _chunked(items: list, n_chunks: int) -> list[list]:
    """Split into at most ``n_chunks`` contiguous, near-equal chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks: list[list] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _maybe_override_engine(config: FdetConfig, engine: str | None) -> FdetConfig:
    if engine is not None and engine != config.engine:
        return replace(config, engine=engine)
    return config


def _classify(error: BaseException) -> str:
    """Map one member/chunk exception to a failure kind."""
    if isinstance(error, BrokenExecutor) or isinstance(error, WorkerCrashError):
        return FAIL_CRASH
    if isinstance(error, TimeoutError):
        return FAIL_TIMEOUT
    if isinstance(error, GraphError) and ("segment" in str(error) or "store file" in str(error)):
        return FAIL_SHM
    if isinstance(error, InjectedFault) and (
        "shm.attach" in str(error) or "mmap.open" in str(error)
    ):
        return FAIL_SHM
    return FAIL_ERROR


def _degraded_backend(mode: str, retry_round: int, tolerance: FaultTolerance) -> str:
    """Backend for retry round ``retry_round`` (0 = first attempt)."""
    if retry_round == 0 or not tolerance.degrade:
        return mode
    ladder = {
        ExecutorMode.PROCESS: (ExecutorMode.THREAD, ExecutorMode.SERIAL),
        ExecutorMode.THREAD: (ExecutorMode.SERIAL,),
        ExecutorMode.SERIAL: (),
    }[mode]
    if not ladder:
        return ExecutorMode.SERIAL
    return ladder[min(retry_round - 1, len(ladder) - 1)]


def _run_serial(
    graph: BipartiteGraph,
    work: list[tuple[int, SamplePlan]],
    config: FdetConfig,
    track_members: bool,
    attempt: int,
    window: EdgeWindow | None = None,
    native_batch: bool = False,
) -> tuple[dict[int, SampleDetection], dict[int, tuple[str, BaseException]]]:
    """In-parent attempt: no pool, no pickling, nothing left to degrade to.

    With ``native_batch``, eligible members run through one multi-member
    kernel call; each still gets its own ``member.detect`` / ``native.peel``
    fault points (fired in work order, per-member failure isolation), and
    anything the kernel cannot take falls back to the per-member path.
    """
    fdet = Fdet(config)
    results: dict[int, SampleDetection] = {}
    failures: dict[int, tuple[str, BaseException]] = {}
    use_batch = (
        native_batch
        and _batched.config_eligible(config)
        and _batched.batch_kernels() is not None
    )
    batch_work: list[tuple[int, SamplePlan]] = []
    for index, plan in work:
        try:
            fault_point("member.detect", index=index, attempt=attempt)
            if use_batch and _batched.plan_eligible(plan):
                fault_point("native.peel", index=index, attempt=attempt)
                batch_work.append((index, plan))
                continue
            results[index] = _detection(
                fdet, materialize_plan(graph, plan, window), track_members
            )
        except Exception as exc:  # noqa: BLE001 - recorded, retried, re-raised by strict callers
            failures[index] = (_classify(exc), exc)
    if batch_work:
        native = _batch_detect_many(graph, batch_work, config, window, native_threads(1))
        for (index, plan), nd in zip(batch_work, native):
            if nd is not None:
                results[index] = _native_detection(nd, track_members)
                continue
            try:
                results[index] = _detection(
                    fdet, materialize_plan(graph, plan, window), track_members
                )
            except Exception as exc:  # noqa: BLE001 - same contract as above
                failures[index] = (_classify(exc), exc)
    return results, failures


def _gather_chunk_futures(
    futures: list[Future],
    chunks: list[list[tuple[int, SamplePlan]]],
    member_timeout: float | None,
) -> tuple[dict[int, SampleDetection], dict[int, tuple[str, BaseException]], bool]:
    """Collect per-chunk futures with one shared wall-clock deadline.

    Returns ``(results, failures, timed_out)``. The deadline is
    ``member_timeout × largest chunk`` — chunks run concurrently, so any
    chunk still unfinished then has spent more than its own budget.
    Completed futures keep their results even if the pool broke later.
    """
    results: dict[int, SampleDetection] = {}
    failures: dict[int, tuple[str, BaseException]] = {}
    timed_out = False
    deadline = None
    if member_timeout is not None:
        deadline = _time.monotonic() + member_timeout * max(len(c) for c in chunks)
    for chunk, future in zip(chunks, futures):
        remaining = None
        if deadline is not None:
            remaining = max(0.001, deadline - _time.monotonic())
        try:
            for index, detection in future.result(timeout=remaining):
                results[index] = detection
        except TimeoutError as exc:
            timed_out = True
            for index, _ in chunk:
                failures[index] = (FAIL_TIMEOUT, exc)
        except BaseException as exc:  # noqa: BLE001 - classified per kind below
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            kind = _classify(exc)
            for index, _ in chunk:
                failures[index] = (kind, exc)
    return results, failures, timed_out


def _run_pooled(
    graph: BipartiteGraph,
    work: list[tuple[int, SamplePlan]],
    config: FdetConfig,
    backend: str,
    n_workers: int | None,
    pool: ReusablePool | None,
    track_members: bool,
    use_shm: bool,
    attempt: int,
    tolerance: FaultTolerance,
    window: EdgeWindow | None = None,
    native_batch: bool = False,
    use_mmap: bool = False,
    source_store: GraphStore | None = None,
) -> tuple[dict[int, SampleDetection], dict[int, tuple[str, BaseException]], str]:
    """One thread/process attempt. Returns ``(results, failures, transport)``.

    ``transport`` names what actually carried the parent to the workers:
    ``"file"`` (the parent is already a file-backed store — its path+layout
    descriptor is shipped and workers map the same file), ``"mmap"`` (the
    store was spilled once to a temporary store file), ``"shm"`` (shared
    segment), ``"pickle"`` (the columnar store pickled per worker chunk)
    or ``"local"`` (thread backend, no transport at all).

    The shared segment / spill file (process backend) is created before
    the fan-out and removed in the ``finally`` below no matter how the
    attempt ends — worker crash, timeout kill, Ctrl-C — so ``/dev/shm``
    and the spill dir can never accumulate orphans. ``weakref.finalize``
    on the segment handle backstops even a failure inside this function
    (on Linux the unlinked spill file stays valid for live worker maps).
    """
    process = backend == ExecutorMode.PROCESS
    workers = (
        pool.n_workers
        if pool is not None and pool.mode == backend
        else (n_workers or default_workers(len(work)))
    )

    source: BipartiteGraph | GraphStore | StoreLayout = graph
    shared = None
    spill_dir: str | None = None
    initializer = None
    initargs: tuple = ()
    plan_window = window
    transport = "local"
    if process:
        # the liveness columns ride inside the store/segment/file; workers
        # rebuild the EdgeWindow from the attached columns
        store = (
            source_store
            if source_store is not None
            else GraphStore.from_graph(graph, window)
        )
        source = store
        plan_window = None
        transport = "pickle"
        if use_mmap and store.layout is not None and store.layout.kind == "file":
            # already file-backed: ship only the path+layout descriptor
            source = store.layout
            initializer, initargs = _attach_worker, (store.layout,)
            transport = "file"
        elif use_mmap:
            spill_dir = tempfile.mkdtemp(prefix="repro_gs_spill_")
            try:
                layout = store.save(os.path.join(spill_dir, "graph.store"))
            except OSError:  # pragma: no cover - spill volume full/unwritable
                shutil.rmtree(spill_dir, ignore_errors=True)
                spill_dir = None
            else:
                source = layout
                initializer, initargs = _attach_worker, (layout,)
                transport = "mmap"
        if transport == "pickle" and use_shm:
            try:
                shared = store.export_shared()
            except OSError:  # pragma: no cover - no usable /dev/shm on this host
                shared = None
            else:
                source = shared.layout
                initializer, initargs = _attach_worker, (shared.layout,)
                transport = "shm"

    own_executor = None
    borrowed_pool = pool is not None and pool.mode == backend
    try:
        if process:
            chunks = _chunked(work, workers)
        else:
            # threads share memory: per-member tasks give the finest retry
            # granularity at no pickling cost
            chunks = [[member] for member in work]
        # oversubscription guard: workers x in-kernel threads <= cores
        threads = native_threads(workers)
        args = [
            (source, config, chunk, track_members, attempt, plan_window, native_batch, threads)
            for chunk in chunks
        ]

        if borrowed_pool:
            submit = pool.submit
        elif process:
            own_executor = ProcessPoolExecutor(
                max_workers=min(workers, len(chunks)),
                mp_context=_process_context(),
                initializer=initializer,
                initargs=initargs,
            )
            submit = own_executor.submit
        else:
            own_executor = ThreadPoolExecutor(max_workers=min(workers, len(chunks)))
            submit = own_executor.submit

        futures: list[Future] = []
        submit_error: BrokenExecutor | None = None
        try:
            for arg in args:
                futures.append(submit(_detect_member_chunk, arg))
        except BrokenExecutor as exc:
            submit_error = exc

        results, failures, timed_out = _gather_chunk_futures(
            futures, chunks[: len(futures)], tolerance.member_timeout
        )
        if submit_error is not None:
            for chunk in chunks[len(futures) :]:
                for index, _ in chunk:
                    failures[index] = (FAIL_CRASH, submit_error)
        if timed_out:
            # a hung worker cannot be joined or cancelled — reclaim it
            if borrowed_pool:
                pool.kill_workers()
            elif own_executor is not None:
                kill_executor_workers(own_executor)
        broken = timed_out or any(kind == FAIL_CRASH for kind, _ in failures.values())
        if broken and borrowed_pool:
            pool.respawn()
        return results, failures, transport
    finally:
        if own_executor is not None:
            own_executor.shutdown(wait=False, cancel_futures=True)
        if shared is not None:
            shared.dispose()
        if spill_dir is not None:
            shutil.rmtree(spill_dir, ignore_errors=True)


def run_members(
    graph: BipartiteGraph | GraphStore,
    plans: Sequence[SamplePlan],
    config: FdetConfig,
    mode: str = ExecutorMode.SERIAL,
    n_workers: int | None = None,
    engine: str | None = None,
    pool: ReusablePool | None = None,
    track_members: bool = True,
    shared_memory: bool = True,
    tolerance: FaultTolerance | None = None,
    window: EdgeWindow | None = None,
    native_batch: bool | None = None,
    mmap: bool = False,
) -> MemberRun:
    """Fault-tolerant fan-out: every plan either detects or fails *typed*.

    ``native_batch`` selects the batched native backend (eligible members
    of an attempt peel through one multi-member kernel call on every
    execution backend); ``None`` defers to ``REPRO_NATIVE_BATCH`` (default
    on). The switch composes with the degradation ladder: a worker-crash
    round additionally disables batching for the remaining retries, the
    way shm failures disable the shared segment.

    ``graph`` may be a :class:`~repro.graph.GraphStore` instead of a
    graph — in particular one opened straight from a store file
    (:meth:`GraphStore.open`), whose windowed columns (if any) become the
    liveness overlay automatically. Process fan-outs then ship only the
    path+layout descriptor: workers map the same file lazily and the
    parent columns never materialize anywhere. ``mmap=True`` requests the
    same file transport for a resident parent by spilling the (compacted)
    store to a temporary file once per attempt instead of exporting a
    shared segment. Either file transport degrades to the pickled store
    after an ``mmap.open``/attach failure, exactly like shm does.

    With ``window`` set, ``graph`` is the full stored graph of a rolling
    window and every member materializes through the liveness overlay
    (see :func:`repro.sampling.materialize_plan`); the overlay travels
    through the shared segment / store file / pickled store on process
    backends.

    The engine behind :func:`detect_on_plans` and
    :meth:`~repro.ensemble.EnsemFDet.fit`. Runs all members on the
    requested backend, then re-runs failed members for up to
    ``tolerance.max_retries`` extra rounds with deterministic backoff,
    degrading the backend (process → thread → serial) and falling back
    from shared memory to the pickled store when the failure kinds call
    for it. Members that never succeed come back as
    :class:`MemberFailure` entries; the caller decides whether that is a
    quorum violation.
    """
    config = _maybe_override_engine(config, engine)
    tolerance = tolerance or FaultTolerance()
    plans = list(plans)
    detections: list[SampleDetection | None] = [None] * len(plans)
    if not plans:
        return MemberRun(detections=detections, failures=(), retry_log=())

    source_store: GraphStore | None = None
    if isinstance(graph, GraphStore):
        store = graph
        own_window = store.edge_window()
        if window is None:
            window = own_window
        if (
            own_window is None
            or window is own_window
            or (window.alive is own_window.alive and window.edge_ids is own_window.edge_ids)
        ):
            # the store carries exactly the overlay being used, so process
            # attempts can ship it (or its file layout) as-is
            source_store = store
        graph = store.to_graph()

    pending = list(range(len(plans)))
    fail_info: dict[int, tuple[str, BaseException]] = {}
    attempts_of: dict[int, int] = {}
    retry_log: list[dict] = []
    use_shm = shared_memory
    # a file-backed parent defaults to the file transport even without
    # mmap=True: its bytes are already on disk, re-exporting them would
    # defeat the point of opening out-of-core
    use_mmap = mmap or (
        source_store is not None
        and source_store.layout is not None
        and source_store.layout.kind == "file"
    )
    use_batch = _batched.resolve_native_batch(native_batch)

    for attempt in range(tolerance.max_retries + 1):
        if not pending:
            break
        backoff = tolerance.backoff_for(attempt)
        if backoff:
            _time.sleep(backoff)
        backend = _degraded_backend(mode, attempt, tolerance)
        work = [(index, plans[index]) for index in pending]
        for index in pending:
            attempts_of[index] = attempt + 1

        # mirror parallel_map's fast path: one worker or one item never
        # pays pool overhead (REPRO_WORKERS=1 pins CI to this path)
        in_parent = backend == ExecutorMode.SERIAL
        if not in_parent and pool is None:
            effective = n_workers or default_workers(len(work))
            in_parent = effective <= 1 or len(work) == 1
        if in_parent:
            results, failures = _run_serial(
                graph, work, config, track_members, attempt, window, use_batch
            )
            transport = "local"
        else:
            attempt_pool = pool if (pool is not None and pool.mode == backend) else None
            results, failures, transport = _run_pooled(
                graph,
                work,
                config,
                backend,
                n_workers,
                attempt_pool,
                track_members,
                use_shm,
                attempt,
                tolerance,
                window,
                use_batch,
                use_mmap,
                source_store,
            )

        for index, detection in results.items():
            detections[index] = detection
        failed = sorted(failures)
        retry_log.append(
            {
                "attempt": attempt,
                "backend": ExecutorMode.SERIAL if in_parent else backend,
                "shared_memory": transport == "shm",
                "transport": transport,
                "native_batch": bool(use_batch),
                "members": [int(i) for i in pending],
                "failed": [int(i) for i in failed],
                "kinds": {str(i): failures[i][0] for i in failed},
            }
        )
        fail_info.update(failures)
        if any(kind == FAIL_SHM for kind, _ in failures.values()):
            # the zero-copy transport itself is suspect (segment attach or
            # file map failed) — pickled store next
            use_shm = False
            use_mmap = False
        if use_batch and any(kind == FAIL_CRASH for kind, _ in failures.values()):
            # a dead worker may mean the native batch itself crashed —
            # retries degrade to the per-member path, like shm degrades
            use_batch = False
        pending = failed

    failures_out = tuple(
        MemberFailure(
            index=index,
            kind=fail_info[index][0],
            error=f"{type(fail_info[index][1]).__name__}: {fail_info[index][1]}",
            attempts=attempts_of[index],
        )
        for index in pending
    )
    return MemberRun(
        detections=detections,
        failures=failures_out,
        retry_log=tuple(retry_log),
        errors={index: fail_info[index][1] for index in pending},
    )


def _raise_first_failure(run: MemberRun) -> None:
    """Strict-mode contract: surface the first permanent failure, typed."""
    if not run.failures:
        return
    first = run.failures[0]
    indices = tuple(f.index for f in run.failures)
    if first.kind == FAIL_TIMEOUT:
        raise MemberTimeoutError(
            f"ensemble members {list(indices)} exceeded their wall-clock "
            f"budget ({first.error}); raise member_timeout, enable retries "
            "(FaultTolerance.max_retries), or use a smaller sample ratio",
            member_indices=indices,
        )
    if first.kind == FAIL_CRASH:
        raise WorkerCrashError(
            f"worker died while running ensemble members {list(indices)} "
            f"({first.error}); the pool was respawned — re-run, enable "
            "retries (FaultTolerance.max_retries), or use executor='serial' "
            "to isolate the member",
            member_indices=indices,
        )
    # member/application-level error (including shm-attach): re-raise the
    # original exception so strict callers keep fail-fast semantics (e.g.
    # a DetectionError from a misconfigured FdetConfig propagates as-is)
    original = (run.errors or {}).get(first.index)
    if original is not None:
        raise original
    raise RuntimeError(
        f"member {first.index} failed after {first.attempts} attempt(s): {first.error}"
    )


def detect_on_plans(
    graph: BipartiteGraph | GraphStore,
    plans: Sequence[SamplePlan],
    config: FdetConfig,
    mode: str = ExecutorMode.SERIAL,
    n_workers: int | None = None,
    engine: str | None = None,
    pool: ReusablePool | None = None,
    track_members: bool = True,
    shared_memory: bool = True,
    tolerance: FaultTolerance | None = None,
    window: EdgeWindow | None = None,
    native_batch: bool | None = None,
    mmap: bool = False,
) -> list[SampleDetection]:
    """Materialize every plan against ``graph`` and run FDET on it.

    Strict by default: any member that still has no result after the
    (default zero-overhead) tolerance policy raises a typed error. Pass a
    :class:`~repro.parallel.FaultTolerance` to retry/degrade instead; for
    access to partial results and the retry log, call :func:`run_members`
    directly (as :meth:`EnsemFDet.fit` does).

    Parameters
    ----------
    graph:
        The parent graph all plans refer to.
    plans:
        Compact per-member sample plans (see :meth:`Sampler.plan_many`).
    config:
        FDET configuration applied to every member.
    mode, n_workers:
        Executor backend and pool size (see :func:`repro.parallel.parallel_map`).
    engine:
        Optional peeling-engine override applied on top of ``config.engine``.
    pool:
        Optional :class:`ReusablePool` of warm workers to run on.
    track_members:
        Record each sample's node labels on the detections (needed by
        appearance-normalised voting and the incremental layer).
    shared_memory:
        For process backends, export the parent once to a shared segment
        instead of pickling it into every worker. Falls back to shipping
        the columnar store (pickled once per worker chunk) when the
        platform refuses the segment.
    tolerance:
        Retry/timeout/degradation policy; defaults to strict (no retries).
    native_batch:
        Batched native backend switch (``None`` = ``REPRO_NATIVE_BATCH``,
        default on); see :func:`run_members`.
    mmap:
        For process backends, ship the parent as an mmap-able store file
        (a path+layout descriptor) instead of a shared segment — the
        out-of-core transport. A ``graph`` that is already a file-backed
        :class:`~repro.graph.GraphStore` uses this transport implicitly;
        see :func:`run_members`.
    """
    run = run_members(
        graph,
        plans,
        config,
        mode=mode,
        n_workers=n_workers,
        engine=engine,
        pool=pool,
        track_members=track_members,
        shared_memory=shared_memory,
        tolerance=tolerance or FaultTolerance.strict(),
        window=window,
        native_batch=native_batch,
        mmap=mmap,
    )
    _raise_first_failure(run)
    return [detection for detection in run.detections if detection is not None]


def detect_on_samples(
    samples: list[BipartiteGraph],
    config: FdetConfig,
    mode: str = ExecutorMode.SERIAL,
    n_workers: int | None = None,
    engine: str | None = None,
    pool: ReusablePool | None = None,
    track_members: bool = True,
) -> list[SampleDetection]:
    """Run FDET over already-materialized subgraphs (the eager shape).

    Prefer :func:`detect_on_plans` when the samples came from a
    :class:`~repro.sampling.Sampler` — it ships ~1% of the bytes. This
    entry point remains for callers holding real subgraphs and as the
    reference semantics the plan pipeline is tested against.
    """
    config = _maybe_override_engine(config, engine)
    if not samples:
        return []

    chunked = mode == ExecutorMode.PROCESS or (
        pool is not None and pool.mode == ExecutorMode.PROCESS
    )
    if not chunked:
        return parallel_map(
            _detect_one,
            [(sample, config, track_members) for sample in samples],
            mode=mode,
            n_workers=n_workers,
            pool=pool,
        )

    workers = pool.n_workers if pool is not None else (n_workers or default_workers(len(samples)))
    chunks = _chunked(samples, workers)
    chunk_results = parallel_map(
        _detect_chunk,
        [(config, chunk, track_members) for chunk in chunks],
        mode=mode,
        n_workers=min(workers, len(chunks)),
        pool=pool,
    )
    return [detection for chunk in chunk_results for detection in chunk]
