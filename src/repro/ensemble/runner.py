"""Parallel execution of FDET across sampled subgraphs (paper Fig. 2).

The mapping ``sampled graph -> FdetResult`` is stateless, so it is exposed as
module-level functions (picklable for the process backend) plus a thin
driver that threads the executor configuration through.

Process-backed runs submit the samples in **one chunk per worker**: the
``FdetConfig`` rides along once per chunk instead of being re-pickled with
every one of the ``N`` samples, and each worker unpickles it once. Pass a
:class:`repro.parallel.ReusablePool` to amortise worker start-up across
repeated fits as well.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..fdet import Fdet, FdetConfig, FdetResult
from ..graph import BipartiteGraph
from ..parallel import ExecutorMode, ReusablePool, default_workers, parallel_map

__all__ = ["detect_on_samples", "SampleDetection"]


@dataclass(frozen=True)
class SampleDetection:
    """FDET output for one sampled subgraph, plus what the sample contained."""

    result: FdetResult
    sample_users: tuple[int, ...]
    sample_merchants: tuple[int, ...]


def _detection(fdet: Fdet, graph: BipartiteGraph) -> SampleDetection:
    return SampleDetection(
        result=fdet.detect(graph),
        sample_users=tuple(graph.user_labels.tolist()),
        sample_merchants=tuple(graph.merchant_labels.tolist()),
    )


def _detect_one(args: tuple[BipartiteGraph, FdetConfig]) -> SampleDetection:
    graph, config = args
    return _detection(Fdet(config), graph)


def _detect_chunk(args: tuple[FdetConfig, list[BipartiteGraph]]) -> list[SampleDetection]:
    config, graphs = args
    fdet = Fdet(config)
    return [_detection(fdet, graph) for graph in graphs]


def _chunked(samples: list[BipartiteGraph], n_chunks: int) -> list[list[BipartiteGraph]]:
    """Split into at most ``n_chunks`` contiguous, near-equal chunks."""
    n_chunks = max(1, min(n_chunks, len(samples)))
    base, extra = divmod(len(samples), n_chunks)
    chunks: list[list[BipartiteGraph]] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(samples[start : start + size])
        start += size
    return chunks


def detect_on_samples(
    samples: list[BipartiteGraph],
    config: FdetConfig,
    mode: str = ExecutorMode.SERIAL,
    n_workers: int | None = None,
    engine: str | None = None,
    pool: ReusablePool | None = None,
) -> list[SampleDetection]:
    """Run FDET over every sampled subgraph, possibly in parallel.

    Results come back in sample order regardless of backend.

    Parameters
    ----------
    samples:
        The sampled subgraphs to detect on.
    config:
        FDET configuration applied to every sample.
    mode, n_workers:
        Executor backend and pool size (see :func:`repro.parallel.parallel_map`).
    engine:
        Optional peeling-engine override (``"reference"``/``"fast"``)
        applied on top of ``config.engine``.
    pool:
        Optional :class:`ReusablePool` whose workers are reused instead of
        starting a fresh pool for this call.
    """
    if engine is not None and engine != config.engine:
        config = replace(config, engine=engine)
    if not samples:
        return []

    chunked = mode == ExecutorMode.PROCESS or (
        pool is not None and pool.mode == ExecutorMode.PROCESS
    )
    if not chunked:
        return parallel_map(
            _detect_one,
            [(sample, config) for sample in samples],
            mode=mode,
            n_workers=n_workers,
            pool=pool,
        )

    workers = pool.n_workers if pool is not None else (n_workers or default_workers(len(samples)))
    chunks = _chunked(samples, workers)
    chunk_results = parallel_map(
        _detect_chunk,
        [(config, chunk) for chunk in chunks],
        mode=mode,
        n_workers=min(workers, len(chunks)),
        pool=pool,
    )
    return [detection for chunk in chunk_results for detection in chunk]
