"""Parallel execution of FDET across sampled subgraphs (paper Fig. 2).

The mapping ``sampled graph -> FdetResult`` is stateless, so it is exposed as
a module-level function (picklable for the process backend) plus a thin
driver that threads the executor configuration through.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fdet import Fdet, FdetConfig, FdetResult
from ..graph import BipartiteGraph
from ..parallel import ExecutorMode, parallel_map

__all__ = ["detect_on_samples", "SampleDetection"]


@dataclass(frozen=True)
class SampleDetection:
    """FDET output for one sampled subgraph, plus what the sample contained."""

    result: FdetResult
    sample_users: tuple[int, ...]
    sample_merchants: tuple[int, ...]


def _detect_one(args: tuple[BipartiteGraph, FdetConfig]) -> SampleDetection:
    graph, config = args
    result = Fdet(config).detect(graph)
    return SampleDetection(
        result=result,
        sample_users=tuple(graph.user_labels.tolist()),
        sample_merchants=tuple(graph.merchant_labels.tolist()),
    )


def detect_on_samples(
    samples: list[BipartiteGraph],
    config: FdetConfig,
    mode: str = ExecutorMode.SERIAL,
    n_workers: int | None = None,
) -> list[SampleDetection]:
    """Run FDET over every sampled subgraph, possibly in parallel.

    Results come back in sample order regardless of backend.
    """
    return parallel_map(
        _detect_one,
        [(sample, config) for sample in samples],
        mode=mode,
        n_workers=n_workers,
    )
