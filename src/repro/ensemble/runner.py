"""Parallel execution of FDET across sampled subgraphs (paper Fig. 2).

Two fan-out shapes live here:

* :func:`detect_on_plans` — the **zero-copy** pipeline used by
  :class:`~repro.ensemble.EnsemFDet`. The parent keeps the graph in one
  frozen :class:`~repro.graph.GraphStore`; for the process backend the
  store is exported to a shared-memory segment, workers attach **once per
  process** (pool initializer for one-shot pools, a process-local cache
  for :class:`~repro.parallel.ReusablePool` workers) and each compact
  :class:`~repro.sampling.SamplePlan` is materialized worker-side through
  the trusted constructor — zero graph bytes are pickled per ensemble
  member, only the ~1%-sized plans. Serial and thread backends skip the
  segment and materialize against the in-process graph directly.
* :func:`detect_on_samples` — the historical eager shape, mapping already
  materialized subgraphs. Kept for callers that hold real subgraphs (and
  as the reference the plan pipeline is parity-tested against). Process
  runs still chunk one submission per worker so the ``FdetConfig`` is
  pickled once per chunk, but every subgraph crosses the boundary.

Results come back in sample order regardless of backend, and
``track_members=False`` skips recording each sample's node labels when no
aggregator needs them (appearance-normalised voting and the incremental
layer do; plain MVA does not).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..fdet import Fdet, FdetConfig, FdetResult
from ..graph import BipartiteGraph, GraphStore, StoreLayout, attached_store
from ..parallel import ExecutorMode, ReusablePool, default_workers, parallel_map
from ..sampling import SamplePlan, materialize_plan

__all__ = ["detect_on_samples", "detect_on_plans", "SampleDetection"]


@dataclass(frozen=True)
class SampleDetection:
    """FDET output for one sampled subgraph, plus (optionally) its contents.

    ``sample_users`` / ``sample_merchants`` are only populated when the
    caller asked for member tracking — a fit at ``N=80`` would otherwise
    keep every sampled label array alive in the result for nothing.
    """

    result: FdetResult
    sample_users: tuple[int, ...] | None = None
    sample_merchants: tuple[int, ...] | None = None


def _detection(fdet: Fdet, graph: BipartiteGraph, track_members: bool) -> SampleDetection:
    result = fdet.detect(graph)
    if not track_members:
        return SampleDetection(result=result)
    return SampleDetection(
        result=result,
        sample_users=tuple(graph.user_labels.tolist()),
        sample_merchants=tuple(graph.merchant_labels.tolist()),
    )


def _detect_one(args: tuple[BipartiteGraph, FdetConfig, bool]) -> SampleDetection:
    graph, config, track_members = args
    return _detection(Fdet(config), graph, track_members)


def _detect_chunk(
    args: tuple[FdetConfig, list[BipartiteGraph], bool]
) -> list[SampleDetection]:
    config, graphs, track_members = args
    fdet = Fdet(config)
    return [_detection(fdet, graph, track_members) for graph in graphs]


def _resolve_parent(source: BipartiteGraph | GraphStore | StoreLayout) -> BipartiteGraph:
    """The parent graph a worker materializes plans against.

    A :class:`StoreLayout` resolves through the process-local attachment
    cache (first touch maps the segment, later chunks and later fits on
    the same segment are dictionary hits); a pickled :class:`GraphStore`
    is the no-shared-memory fallback; a :class:`BipartiteGraph` arrives
    only on in-process backends.
    """
    if isinstance(source, StoreLayout):
        return attached_store(source).to_graph()
    if isinstance(source, GraphStore):
        return source.to_graph()
    return source


def _attach_worker(layout: StoreLayout) -> None:
    """Pool initializer: map the shared segment once, at worker spawn."""
    attached_store(layout)


def _detect_one_plan(
    args: tuple[BipartiteGraph, SamplePlan, FdetConfig, bool]
) -> SampleDetection:
    graph, plan, config, track_members = args
    return _detection(Fdet(config), materialize_plan(graph, plan), track_members)


def _detect_plan_chunk(
    args: tuple[BipartiteGraph | GraphStore | StoreLayout, FdetConfig, list[SamplePlan], bool]
) -> list[SampleDetection]:
    source, config, plans, track_members = args
    graph = _resolve_parent(source)
    fdet = Fdet(config)
    return [
        _detection(fdet, materialize_plan(graph, plan), track_members) for plan in plans
    ]


def _chunked(items: list, n_chunks: int) -> list[list]:
    """Split into at most ``n_chunks`` contiguous, near-equal chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks: list[list] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _maybe_override_engine(config: FdetConfig, engine: str | None) -> FdetConfig:
    if engine is not None and engine != config.engine:
        return replace(config, engine=engine)
    return config


def detect_on_plans(
    graph: BipartiteGraph,
    plans: Sequence[SamplePlan],
    config: FdetConfig,
    mode: str = ExecutorMode.SERIAL,
    n_workers: int | None = None,
    engine: str | None = None,
    pool: ReusablePool | None = None,
    track_members: bool = True,
    shared_memory: bool = True,
) -> list[SampleDetection]:
    """Materialize every plan against ``graph`` and run FDET on it.

    Parameters
    ----------
    graph:
        The parent graph all plans refer to.
    plans:
        Compact per-member sample plans (see :meth:`Sampler.plan_many`).
    config:
        FDET configuration applied to every member.
    mode, n_workers:
        Executor backend and pool size (see :func:`repro.parallel.parallel_map`).
    engine:
        Optional peeling-engine override applied on top of ``config.engine``.
    pool:
        Optional :class:`ReusablePool` of warm workers to run on.
    track_members:
        Record each sample's node labels on the detections (needed by
        appearance-normalised voting and the incremental layer).
    shared_memory:
        For process backends, export the parent once to a shared segment
        instead of pickling it into every worker. Falls back to shipping
        the columnar store (pickled once per worker chunk) when the
        platform refuses the segment.
    """
    config = _maybe_override_engine(config, engine)
    plans = list(plans)
    if not plans:
        return []

    process = mode == ExecutorMode.PROCESS or (
        pool is not None and pool.mode == ExecutorMode.PROCESS
    )
    if not process:
        return parallel_map(
            _detect_one_plan,
            [(graph, plan, config, track_members) for plan in plans],
            mode=mode,
            n_workers=n_workers,
            pool=pool,
        )

    workers = pool.n_workers if pool is not None else (n_workers or default_workers(len(plans)))
    if pool is None and (workers <= 1 or len(plans) == 1):
        # the work stays in this process: no segment, no pickling at all
        fdet = Fdet(config)
        return [
            _detection(fdet, materialize_plan(graph, plan), track_members)
            for plan in plans
        ]

    store = GraphStore.from_graph(graph)
    source: GraphStore | StoreLayout = store
    shared = None
    initializer = None
    initargs: tuple = ()
    if shared_memory:
        try:
            shared = store.export_shared()
        except OSError:  # pragma: no cover - no usable /dev/shm on this host
            shared = None
        else:
            source = shared.layout
            initializer, initargs = _attach_worker, (shared.layout,)
    try:
        chunks = _chunked(plans, workers)
        chunk_results = parallel_map(
            _detect_plan_chunk,
            [(source, config, chunk, track_members) for chunk in chunks],
            mode=ExecutorMode.PROCESS,
            n_workers=min(workers, len(chunks)),
            pool=pool,
            initializer=initializer,
            initargs=initargs,
        )
    finally:
        if shared is not None:
            shared.dispose()
    return [detection for chunk in chunk_results for detection in chunk]


def detect_on_samples(
    samples: list[BipartiteGraph],
    config: FdetConfig,
    mode: str = ExecutorMode.SERIAL,
    n_workers: int | None = None,
    engine: str | None = None,
    pool: ReusablePool | None = None,
    track_members: bool = True,
) -> list[SampleDetection]:
    """Run FDET over already-materialized subgraphs (the eager shape).

    Prefer :func:`detect_on_plans` when the samples came from a
    :class:`~repro.sampling.Sampler` — it ships ~1% of the bytes. This
    entry point remains for callers holding real subgraphs and as the
    reference semantics the plan pipeline is tested against.
    """
    config = _maybe_override_engine(config, engine)
    if not samples:
        return []

    chunked = mode == ExecutorMode.PROCESS or (
        pool is not None and pool.mode == ExecutorMode.PROCESS
    )
    if not chunked:
        return parallel_map(
            _detect_one,
            [(sample, config, track_members) for sample in samples],
            mode=mode,
            n_workers=n_workers,
            pool=pool,
        )

    workers = pool.n_workers if pool is not None else (n_workers or default_workers(len(samples)))
    chunks = _chunked(samples, workers)
    chunk_results = parallel_map(
        _detect_chunk,
        [(config, chunk, track_members) for chunk in chunks],
        mode=mode,
        n_workers=min(workers, len(chunks)),
        pool=pool,
    )
    return [detection for chunk in chunk_results for detection in chunk]
