"""Stripe-sharded ensemble execution: K shard stores, one merged vote table.

A fit at ``N`` samples touches the full parent edge set ``N·S`` times; for
10M+-edge graphs that working set dwarfs RAM even with the mmap transport.
Sharding exploits the ensemble's own structure: members are independent
until the vote merge, so they can be partitioned into ``K`` contiguous
groups and each group run against a **shard store** that contains only the
edges its members actually sample — the union of their per-member edge
sets, typically ``(1 - (1-S)^{N/K})·|E|`` rows instead of ``|E|``.

Bitwise parity is the contract, achieved by construction:

* a shard store keeps the parent's **full node space** (sizes and label
  arrays by reference), so every worker-side node compaction, label gather
  and detected-node index is in parent coordinates, unchanged;
* each member's plan is rewritten to an ``"edges"``-kind plan over shard
  rows that reproduces the member's parent edge sequence *in the same
  order* (ascending for stripe/window masks, plan order for edge plans) —
  so adjacency construction and peel tie-breaking are identical;
* liveness overlays are folded into the shard rows at partition time, so
  windowed fits shard exactly like frozen ones;
* votes are integer counts: per-shard tallies summed shard by shard
  (:func:`merge_shard_votes`, reusing the native ``repro_accumulate_votes``
  path) equal the global tally exactly.

Works for any sampler whose plans reduce to parent edge-id lists ("edges"
and "stripes" kinds — RES and the stable sampler); node-kind plans depend
on cross-member node structure and raise :class:`~repro.errors.DetectionError`.

With ``mmap=True`` each shard store is spilled to a temporary store file
and reopened as a lazy map before its members run, so the parent process
holds at most one shard's columns resident at a time — the out-of-core
configuration ``benchmarks/bench_scale.py`` measures.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import DetectionError, InjectedFault
from ..faults import fault_point
from ..fdet import FdetConfig
from ..fdet import batched as _batched
from ..graph import BipartiteGraph, GraphStore
from ..graph.window import EdgeWindow
from ..parallel import ExecutorMode, FaultTolerance, ReusablePool
from ..sampling import SamplePlan, compact_indices
from .runner import MemberRun, SampleDetection, run_members

__all__ = ["ShardPlan", "merge_shard_votes", "plan_shards", "run_sharded"]


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous member-index groups, one per shard."""

    members: tuple[tuple[int, ...], ...]

    @property
    def n_shards(self) -> int:
        """Number of (non-empty) shards."""
        return len(self.members)


def plan_shards(n_samples: int, n_shards: int) -> ShardPlan:
    """Partition ``n_samples`` member indices into ``n_shards`` groups.

    Contiguous near-equal groups (the same split :func:`_chunked` gives the
    process fan-out), capped at one member per shard — asking for more
    shards than members just yields fewer shards.
    """
    if n_shards < 1:
        raise DetectionError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(int(n_shards), int(n_samples))
    base, extra = divmod(int(n_samples), n_shards)
    groups = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return ShardPlan(members=tuple(groups))


def _member_parent_ids(
    plan: SamplePlan, n_edges: int, window: EdgeWindow | None
) -> np.ndarray:
    """The parent edge ids one member keeps, in its materialization order."""
    if plan.kind not in ("edges", "stripes"):
        raise DetectionError(
            f"sharding requires plans that reduce to parent edge lists "
            f"('edges'/'stripes'), got {plan.kind!r} — run unsharded (shards=1)"
        )
    if window is not None and plan.kind != "stripes":
        raise DetectionError(
            f"windowed sharding requires stripe plans, got {plan.kind!r}"
        )
    return _batched.plan_edge_ids(plan, n_edges, window)


def _shard_store(parent: GraphStore, rows: np.ndarray) -> GraphStore:
    """The shard's store: selected parent rows, full parent node space.

    Label arrays are shared by reference (they stay in parent coordinates);
    edge columns are gathered in storage dtype, so a compact parent yields
    a compact shard — and gathering from an mmap-backed parent reads only
    the pages the shard's rows live on.
    """
    return GraphStore(
        n_users=parent.n_users,
        n_merchants=parent.n_merchants,
        edge_users=np.ascontiguousarray(parent.edge_users[rows]),
        edge_merchants=np.ascontiguousarray(parent.edge_merchants[rows]),
        edge_weights=(
            None
            if parent.edge_weights is None
            else np.ascontiguousarray(parent.edge_weights[rows])
        ),
        user_labels=parent.user_labels,
        merchant_labels=parent.merchant_labels,
    )


def run_sharded(
    graph: BipartiteGraph | GraphStore,
    plans: Sequence[SamplePlan],
    config: FdetConfig,
    shard_plan: ShardPlan,
    mode: str = ExecutorMode.SERIAL,
    n_workers: int | None = None,
    engine: str | None = None,
    pool: ReusablePool | None = None,
    track_members: bool = True,
    shared_memory: bool = True,
    tolerance: FaultTolerance | None = None,
    window: EdgeWindow | None = None,
    native_batch: bool | None = None,
    mmap: bool = False,
) -> MemberRun:
    """Run every member through its shard store; results in global order.

    Shards execute sequentially (members inside a shard fan out across the
    configured backend as usual), which is what bounds the parent's peak
    RSS to roughly one shard's store in the ``mmap`` configuration. Each
    shard's :func:`~repro.ensemble.runner.run_members` call keeps the full
    fault-tolerance machinery — retries, backend degradation, transport
    fallback, typed failures — and its retry-log entries come back tagged
    with the shard index. Failures across shards combine into one
    :class:`~repro.ensemble.runner.MemberRun`, so quorum enforcement sees
    the whole fit.
    """
    plans = list(plans)
    store = graph if isinstance(graph, GraphStore) else GraphStore.from_graph(graph, window)
    if window is None:
        window = store.edge_window()
    n_edges = store.n_edges

    detections: list[SampleDetection | None] = [None] * len(plans)
    failures = []
    retry_log: list[dict] = []
    errors: dict[int, BaseException] = {}

    for shard_index, members in enumerate(shard_plan.members):
        if not members:
            continue
        # union of the shard's member edge sets -> shard rows (ascending)
        union = np.zeros(n_edges, dtype=bool)
        member_ids = []
        for index in members:
            ids = _member_parent_ids(plans[index], n_edges, window)
            member_ids.append(ids)
            union[ids] = True
        rows = np.nonzero(union)[0]
        del union

        # rewrite each member over shard-row coordinates, preserving order
        shard_plans = [
            SamplePlan(
                kind="edges",
                edge_indices=compact_indices(np.searchsorted(rows, ids), rows.size),
                weight_scale=plans[index].weight_scale,
            )
            for index, ids in zip(members, member_ids)
        ]
        del member_ids

        shard = _shard_store(store, rows)
        del rows
        spill_dir: str | None = None
        try:
            if mmap:
                # spill the shard and drop the resident copy before running:
                # the parent keeps only lazy views of one shard at a time
                spill_dir = tempfile.mkdtemp(prefix="repro_gs_shard_")
                path = os.path.join(spill_dir, f"shard{shard_index}.store")
                shard.save(path)
                shard = GraphStore.open(path, mmap=True)
            run = run_members(
                shard,
                shard_plans,
                config,
                mode=mode,
                n_workers=n_workers,
                engine=engine,
                pool=pool,
                track_members=track_members,
                shared_memory=shared_memory,
                tolerance=tolerance,
                window=None,  # liveness already folded into the shard rows
                native_batch=native_batch,
            )
        finally:
            if spill_dir is not None:
                shutil.rmtree(spill_dir, ignore_errors=True)

        # remap the shard-local results back to global member indices
        for local, detection in enumerate(run.detections):
            detections[members[local]] = detection
        for failure in run.failures:
            failures.append(
                type(failure)(
                    index=members[failure.index],
                    kind=failure.kind,
                    error=failure.error,
                    attempts=failure.attempts,
                )
            )
        for entry in run.retry_log:
            retry_log.append(
                {
                    **entry,
                    "shard": shard_index,
                    "members": [int(members[i]) for i in entry["members"]],
                    "failed": [int(members[i]) for i in entry["failed"]],
                    "kinds": {
                        str(members[int(i)]): kind for i, kind in entry["kinds"].items()
                    },
                }
            )
        for local, error in (run.errors or {}).items():
            errors[members[local]] = error

    return MemberRun(
        detections=detections,
        failures=tuple(sorted(failures, key=lambda f: f.index)),
        retry_log=tuple(retry_log),
        errors=errors or None,
    )


def merge_shard_votes(
    shard_detections: Sequence[Sequence[object]], graph: BipartiteGraph
) -> tuple[Counter, Counter] | None:
    """Combine per-shard vote tallies into the global vote counters.

    Each shard's surviving detections are tallied through the native
    accumulator (:func:`repro.fdet.batched.vote_counters` — parent-index
    votes, labels applied once) and the per-shard counters are summed.
    Votes are integers, so the sum is *exactly* the single global tally an
    unsharded fit computes. Returns ``None`` when any shard cannot take
    the native path (missing index arrays, duplicate labels, no kernel) or
    when the ``shard.merge`` fault point fires — the caller then falls
    back to the label-based Python merge, which produces the same table.
    """
    user_votes: Counter = Counter()
    merchant_votes: Counter = Counter()
    for shard_index, detections in enumerate(shard_detections):
        if not detections:
            continue
        try:
            fault_point("shard.merge", shard=shard_index)
        except InjectedFault:
            return None
        counters = _batched.vote_counters(list(detections), graph)
        if counters is None:
            return None
        user_votes.update(counters[0])
        merchant_votes.update(counters[1])
    return user_votes, merchant_votes
