"""Soft (score-weighted) vote aggregation — an extension point.

The paper notes (§IV-C) that "the aggregation methods are flexible and can
be set as the one suitable for the specific requirement". MVA weights every
nomination equally; this module implements the natural refinement: weight a
nomination by the *density of the block* that produced it, so users found
inside very dense blocks count for more than users swept up in marginal
ones. The output is a continuous suspiciousness score per node, which also
yields finer-grained operating curves than integer vote counts.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import AggregationError
from .results import DetectionResult
from .runner import SampleDetection

__all__ = ["SoftVoteTable", "soft_votes_from_detections", "soft_threshold_sweep"]


class SoftVoteTable:
    """Per-label accumulated block-density mass from the ensemble."""

    __slots__ = ("n_samples", "user_scores", "merchant_scores")

    def __init__(
        self,
        n_samples: int,
        user_scores: dict[int, float],
        merchant_scores: dict[int, float],
    ) -> None:
        self.n_samples = n_samples
        self.user_scores = user_scores
        self.merchant_scores = merchant_scores

    def max_user_score(self) -> float:
        """Largest accumulated user score (0 when nothing was nominated)."""
        return max(self.user_scores.values(), default=0.0)

    def detect(self, threshold: float) -> DetectionResult:
        """Flag every node whose accumulated score reaches ``threshold``."""
        if threshold <= 0:
            raise AggregationError(f"soft-vote threshold must be > 0, got {threshold}")
        users = [label for label, score in self.user_scores.items() if score >= threshold]
        merchants = [
            label for label, score in self.merchant_scores.items() if score >= threshold
        ]
        return DetectionResult(
            user_labels=np.array(sorted(users), dtype=np.int64),
            merchant_labels=np.array(sorted(merchants), dtype=np.int64),
        )


def soft_votes_from_detections(
    detections: list[SampleDetection], normalize_per_sample: bool = True
) -> SoftVoteTable:
    """Accumulate block densities into per-node scores.

    Every node in a kept block receives that block's density as its vote
    weight from that sample. ``normalize_per_sample=True`` divides by the
    sample's first-block density so samples with globally denser graphs do
    not dominate.
    """
    user_scores: dict[int, float] = defaultdict(float)
    merchant_scores: dict[int, float] = defaultdict(float)
    for detection in detections:
        result = detection.result
        blocks = result.blocks
        if not blocks:
            continue
        scale = blocks[0].density if (normalize_per_sample and blocks[0].density > 0) else 1.0
        for block in blocks:
            weight = block.density / scale
            for label in block.user_labels.tolist():
                user_scores[label] += weight
            for label in block.merchant_labels.tolist():
                merchant_scores[label] += weight
    return SoftVoteTable(
        n_samples=len(detections),
        user_scores=dict(user_scores),
        merchant_scores=dict(merchant_scores),
    )


def soft_threshold_sweep(
    table: SoftVoteTable, n_points: int = 40
) -> list[tuple[float, DetectionResult]]:
    """Detections across a geometric grid of soft thresholds."""
    top = table.max_user_score()
    if top <= 0:
        return []
    thresholds = np.geomspace(top / (4 * table.n_samples), top, n_points)
    return [(float(t), table.detect(float(t))) for t in thresholds]
