"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from bad
call signatures, etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors related to bipartite graph construction/use."""


class GraphValidationError(GraphError):
    """A graph's internal arrays are inconsistent (bad indices, lengths...)."""


class EmptyGraphError(GraphError):
    """An operation that requires at least one edge received an empty graph."""


class SamplingError(ReproError):
    """A sampler was configured with invalid parameters."""


class DetectionError(ReproError):
    """A detector (FDET, baseline) was configured or invoked incorrectly."""


class AggregationError(ReproError):
    """Vote aggregation received inconsistent inputs."""


class DatasetError(ReproError):
    """Synthetic dataset generation or loading failed."""


class ExperimentError(ReproError):
    """An experiment driver was configured incorrectly."""


class ScenarioError(ReproError):
    """An adversarial scenario or the scenario harness was misconfigured."""
