"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from bad
call signatures, etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors related to bipartite graph construction/use."""


class GraphValidationError(GraphError):
    """A graph's internal arrays are inconsistent (bad indices, lengths...)."""


class EmptyGraphError(GraphError):
    """An operation that requires at least one edge received an empty graph."""


class SamplingError(ReproError):
    """A sampler was configured with invalid parameters."""


class DetectionError(ReproError):
    """A detector (FDET, baseline) was configured or invoked incorrectly."""


class ParallelError(ReproError):
    """Base class for failures of the parallel execution substrate.

    Raised *instead of* the raw ``concurrent.futures`` / ``pickle``
    exceptions so callers see which ensemble members were in flight and
    what to do about it, not an opaque pool traceback.
    """

    def __init__(self, message: str, member_indices: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        #: global indices of the work items that did not complete
        self.member_indices = tuple(int(i) for i in member_indices)


class WorkerCrashError(ParallelError):
    """A pool worker died (SIGKILL, OOM, segfault) before finishing its chunk."""


class MemberTimeoutError(ParallelError):
    """A member (or its chunk) exceeded the configured wall-clock timeout."""


class QuorumError(DetectionError):
    """Too many ensemble members failed permanently to trust a vote."""


class StateError(DetectionError):
    """Base class for detection-state persistence failures."""


class StateChecksumError(StateError):
    """A state archive is corrupt (bad checksum, truncated, unreadable).

    Raised for *any* unreadable or integrity-failing archive so that a
    corrupted snapshot can never be mistaken for a semantic error — and
    never silently yields a wrong vote table.
    """


class InjectedFault(ReproError):
    """A deliberate, deterministic failure raised by the fault-injection layer."""


class AggregationError(ReproError):
    """Vote aggregation received inconsistent inputs."""


class DatasetError(ReproError):
    """Synthetic dataset generation or loading failed."""


class ExperimentError(ReproError):
    """An experiment driver was configured incorrectly."""


class ScenarioError(ReproError):
    """An adversarial scenario or the scenario harness was misconfigured."""
