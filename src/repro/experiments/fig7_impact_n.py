"""Fig. 7 — impact of the ensemble size ``N`` at fixed ``S``.

Paper setting: S = 0.1, N ∈ {10, 20, 40, 80}. Expected shape: performance
improves with N but with rapidly diminishing returns (N=40 vs N=80 nearly
indistinguishable) — the stability property that lets EnsemFDet run on
modest hardware. Because the total number of votes differs per N, curves
are compared at equal numbers of *detected* PINs (x-axis), exactly as the
paper argues in §V-D1.
"""

from __future__ import annotations

from ..metrics import ensemble_threshold_curve
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale
from .common import dataset_for, fit_ensemble

__all__ = ["Fig7ImpactN"]


class Fig7ImpactN(Experiment):
    """Parameter sweep over N (paper Fig. 7)."""

    id = "fig7"
    title = "Fig. 7 — impact of the number of sampled graphs N"
    paper_artifact = "Figure 7"

    dataset_index = 3
    #: paper sweep {10, 20, 40, 80}, scaled down proportionally per preset
    n_values_full = (10, 20, 40, 80)

    def n_values(self, preset: ScalePreset) -> list[int]:
        """The N sweep, shrunk for cheaper presets (keeps the 1:2:4:8 shape)."""
        factor = max(1, 80 // max(preset.n_samples, 1))
        return [max(2, n // factor) for n in self.n_values_full]

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        dataset = dataset_for(self.dataset_index, preset, seed)
        rows = []
        for n in self.n_values(preset):
            ensemble = fit_ensemble(dataset, preset, seed, n_samples=n)
            for point in ensemble_threshold_curve(ensemble, dataset.blacklist):
                rows.append({"n_samples": n, **point.as_row()})
        return self._result(
            rows,
            scale=preset.name,
            seed=seed,
            dataset=dataset.name,
            sample_ratio=preset.sample_ratio,
        )
