"""Fig. 6 — auto-truncation (``k̂``) vs fixed ``k = 30``.

Expected shape: the auto-truncated ensemble reaches better precision at
comparable recall; the fixed-k variant gains recall only by flooding in
low-value blocks whose precision approaches random selection. The paper
also reports all observed ``k̂ < 15`` — the metadata records our observed
``k̂`` distribution for the same check.
"""

from __future__ import annotations

from collections import Counter

from ..fdet import FixedKRule
from ..metrics import ensemble_threshold_curve
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale
from .common import dataset_for, fit_ensemble, threshold_grid

__all__ = ["Fig6Truncation"]


class Fig6Truncation(Experiment):
    """EnsemFDet vs ENSEMFDET-FIX-K (paper Fig. 6)."""

    id = "fig6"
    title = "Fig. 6 — auto truncating point vs fixed k"
    paper_artifact = "Figure 6"

    dataset_index = 3
    #: the paper fixes k = 30 for the comparison arm
    fixed_k = 30

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        dataset = dataset_for(self.dataset_index, preset, seed)
        rows = []

        auto = fit_ensemble(dataset, preset, seed)
        k_hats = Counter(d.result.k_hat for d in auto.sample_detections)
        for point in ensemble_threshold_curve(
            auto, dataset.blacklist, threshold_grid(auto.n_samples)
        ):
            rows.append({"variant": "auto_truncating_k", **point.as_row()})

        # fixed-k arm: same sampling, but keep fixed_k blocks per sample
        # (extraction must also be allowed to produce that many)
        fixed_preset = ScalePreset(
            name=preset.name,
            dataset_scale=preset.dataset_scale,
            n_samples=preset.n_samples,
            sample_ratio=preset.sample_ratio,
            max_blocks=max(preset.max_blocks, self.fixed_k),
            fraudar_blocks=preset.fraudar_blocks,
            svd_components=preset.svd_components,
        )
        fixed = fit_ensemble(
            dataset, fixed_preset, seed, truncation=FixedKRule(self.fixed_k)
        )
        for point in ensemble_threshold_curve(
            fixed, dataset.blacklist, threshold_grid(fixed.n_samples)
        ):
            rows.append({"variant": f"fixed_k_{self.fixed_k}", **point.as_row()})

        return self._result(
            rows,
            scale=preset.name,
            seed=seed,
            dataset=dataset.name,
            k_hat_distribution=dict(sorted(k_hats.items())),
            max_observed_k_hat=max(k_hats) if k_hats else 0,
        )
