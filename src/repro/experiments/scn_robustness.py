"""Scenario robustness grid — a beyond-the-paper experiment driver.

The paper stops at naive dense-block injection; this driver runs the full
adversarial scenario library (camouflage, hijacked accounts, staged waves,
spray fraud, skewed targets — see :mod:`repro.scenarios`) against both the
cold ensemble and the incremental/streaming path, across an
attack-intensity sweep, and reports best-F1 / AUC-PR / precision@k per
cell. The interesting read-out is the *shape*: which attack shapes degrade
the ensemble, and how gracefully.
"""

from __future__ import annotations

from ..parallel import ExecutorMode
from ..scenarios import ScenarioGridConfig, run_grid
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale

__all__ = ["ScnRobustness"]


class ScnRobustness(Experiment):
    """Detector × attack-scenario × intensity robustness grid."""

    id = "scn"
    title = "Scenario robustness — detectors vs. adversarial attack shapes"
    paper_artifact = "beyond-paper extension (FraudTrap-style attack grid)"

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        intensities = (1.0,) if preset.name == "tiny" else (0.5, 1.0, 2.0)
        config = ScenarioGridConfig(
            intensities=intensities,
            detectors=("ensemfdet", "incremental"),
            scale=preset.dataset_scale,
            seed=seed,
            n_samples=preset.n_samples,
            sample_ratio=preset.sample_ratio,
            max_blocks=preset.max_blocks,
            # serial keeps the many small fits cheap (no pool spin-up per cell)
            executor=ExecutorMode.SERIAL,
        )
        grid = run_grid(config)
        return self._result(grid.rows, scale=preset.name, seed=seed, grid=grid.meta)
