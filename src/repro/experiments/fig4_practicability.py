"""Fig. 4 — F1/precision vs number of detected PINs; smooth vs polyline.

The practicability argument: EnsemFDet's voting threshold ``T`` moves the
detected-set size almost continuously, whereas Fraudar can only jump between
whole-block unions — spans of ~20,000 PINs in the paper. This driver emits
both curves *and* quantifies the claim with the max adjacent gap in
``n_detected`` per method (reported in the metadata).
"""

from __future__ import annotations

from ..baselines import FraudarDetector
from ..metrics import ensemble_threshold_curve, fraudar_block_curve, max_detected_gap
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale
from .common import dataset_for, fit_ensemble

__all__ = ["Fig4Practicability"]


class Fig4Practicability(Experiment):
    """EnsemFDet vs Fraudar over #detected PINs (paper Fig. 4)."""

    id = "fig4"
    title = "Fig. 4 — F1/precision vs number of detected PINs"
    paper_artifact = "Figure 4"

    dataset_indices = (1, 2, 3)

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        rows = []
        gaps: dict[str, dict[str, int]] = {}
        for index in self.dataset_indices:
            dataset = dataset_for(index, preset, seed)
            blacklist = dataset.blacklist

            ensemble = fit_ensemble(dataset, preset, seed)
            ensemble_curve = ensemble_threshold_curve(ensemble, blacklist)
            fraudar = FraudarDetector(n_blocks=preset.fraudar_blocks).detect(dataset.graph)
            fraudar_curve = fraudar_block_curve(fraudar, blacklist)

            gaps[dataset.name] = {
                "ensemfdet_max_gap": max_detected_gap(ensemble_curve),
                "fraudar_max_gap": max_detected_gap(fraudar_curve),
            }
            for method, curve in (("ensemfdet", ensemble_curve), ("fraudar", fraudar_curve)):
                for point in curve:
                    rows.append(
                        {
                            "dataset": dataset.name,
                            "method": method,
                            "n_detected": point.n_detected,
                            "precision": round(point.precision, 6),
                            "recall": round(point.recall, 6),
                            "f1": round(point.f1, 6),
                        }
                    )
        rows.sort(key=lambda row: (row["dataset"], row["method"], row["n_detected"]))
        return self._result(rows, scale=preset.name, seed=seed, gaps=gaps)
