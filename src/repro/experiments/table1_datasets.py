"""Table I — statistics of the three datasets.

Paper values (JD.com, proprietary):

=======  =========  =========  ==============  =========
Dataset  Node:PIN   Fraud PIN  Node:Merchant   Edge
=======  =========  =========  ==============  =========
1          454,925     24,247         226,585  1,023,846
2        2,194,325     16,035         120,867  2,790,517
3        4,332,696    101,702         556,634  7,997,696
=======  =========  =========  ==============  =========

The reproduction regenerates the same row layout for the synthetic JD-like
datasets; at ``dataset_scale=1.0`` every count is ≈1/50 of the paper's.
"""

from __future__ import annotations

from ..datasets import dataset_row, make_all_jd_datasets
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale

__all__ = ["Table1Datasets", "PAPER_TABLE1"]

#: the paper's Table I, for side-by-side reporting
PAPER_TABLE1 = [
    {"dataset": "paper#1", "node_pin": 454_925, "fraud_pin": 24_247, "node_merchant": 226_585, "edge": 1_023_846},
    {"dataset": "paper#2", "node_pin": 2_194_325, "fraud_pin": 16_035, "node_merchant": 120_867, "edge": 2_790_517},
    {"dataset": "paper#3", "node_pin": 4_332_696, "fraud_pin": 101_702, "node_merchant": 556_634, "edge": 7_997_696},
]


class Table1Datasets(Experiment):
    """Regenerate Table I for the synthetic JD-like datasets."""

    id = "table1"
    title = "Table I — dataset statistics"
    paper_artifact = "Table I"

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        datasets = make_all_jd_datasets(scale=preset.dataset_scale, seed=seed)
        rows = []
        for dataset, paper in zip(datasets, PAPER_TABLE1):
            row = dataset_row(dataset)
            # report scaled-size agreement against the paper's Table I
            row["paper_edge"] = paper["edge"]
            row["edge_ratio_vs_paper"] = round(row["edge"] / paper["edge"], 6)
            rows.append(row)
        return self._result(rows, scale=preset.name, seed=seed)
