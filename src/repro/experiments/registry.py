"""Registry of all experiment drivers, keyed by experiment id."""

from __future__ import annotations

from ..errors import ExperimentError
from .base import Experiment
from .fig1_block_scores import Fig1BlockScores
from .fig3_method_comparison import Fig3MethodComparison
from .fig4_practicability import Fig4Practicability
from .fig5_sampling_methods import Fig5SamplingMethods
from .fig6_truncation import Fig6Truncation
from .fig7_impact_n import Fig7ImpactN
from .fig8_impact_s import Fig8ImpactS
from .fig9_impact_t import Fig9ImpactT
from .scn_robustness import ScnRobustness
from .table1_datasets import Table1Datasets
from .table3_timing import Table3Timing

__all__ = ["EXPERIMENTS", "get_experiment", "all_experiment_ids"]

_CLASSES: tuple[type[Experiment], ...] = (
    Table1Datasets,
    Fig1BlockScores,
    Fig3MethodComparison,
    Fig4Practicability,
    Table3Timing,
    Fig5SamplingMethods,
    Fig6Truncation,
    Fig7ImpactN,
    Fig8ImpactS,
    Fig9ImpactT,
    ScnRobustness,
)

#: experiment id -> driver class
EXPERIMENTS: dict[str, type[Experiment]] = {cls.id: cls for cls in _CLASSES}


def all_experiment_ids() -> list[str]:
    """All registered ids, in paper order."""
    return [cls.id for cls in _CLASSES]


def get_experiment(experiment_id: str) -> Experiment:
    """Instantiate the driver for ``experiment_id``."""
    cls = EXPERIMENTS.get(experiment_id)
    if cls is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(all_experiment_ids())}"
        )
    return cls()
