"""Table III — running time of EnsemFDet vs Fraudar on all datasets.

Paper numbers (seconds): EnsemFDet 74/162/471 vs Fraudar 806/2366/5682 — a
~10x speedup at S=0.1, with the theoretical bound
``Time(EnsemFDet) < S × Time(Fraudar)`` once detection is fully parallel
(up to 100x at S=0.01).

The reproduction measures both on the same host: Fraudar runs its ``K``
blocks sequentially on the full graph; EnsemFDet samples then detects on a
process pool. We report wall-clock, the speedup ratio, and the
``S × Fraudar`` bound for comparison.
"""

from __future__ import annotations

from ..detectors import DetectorContext, make_detector
from ..fdet import PeelEngine
from ..parallel import ExecutorMode, peak_rss_bytes
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale
from .common import dataset_for

__all__ = ["Table3Timing", "PAPER_TABLE3"]

#: the paper's Table III (seconds)
PAPER_TABLE3 = {
    "jd1": {"ensemfdet": 74.127, "fraudar": 805.533},
    "jd2": {"ensemfdet": 162.102, "fraudar": 2365.659},
    "jd3": {"ensemfdet": 470.508, "fraudar": 5681.591},
}


class Table3Timing(Experiment):
    """Wall-clock comparison EnsemFDet vs Fraudar (paper Table III)."""

    id = "table3"
    title = "Table III — time consumption EnsemFDet vs Fraudar"
    paper_artifact = "Table III"

    dataset_indices = (1, 2, 3)

    def run(
        self,
        scale: str | ScalePreset = "small",
        seed: int = 0,
        engine: str | None = None,
    ) -> ExperimentResult:
        preset = resolve_scale(scale)
        engine = engine or PeelEngine.DEFAULT
        # both contenders come from the detector registry, built from one
        # shared context (the figure's historical random-edge sampler and
        # process pool for the ensemble, Fraudar at the preset's fixed K)
        context = DetectorContext(
            seed=seed,
            n_samples=preset.n_samples,
            sample_ratio=preset.sample_ratio,
            max_blocks=preset.max_blocks,
            engine=engine,
            executor=ExecutorMode.PROCESS,
        )
        ensemble = make_detector(("ensemfdet", {"sampler": "res"}), context)
        fraudar = make_detector(("fraudar", {"n_blocks": preset.fraudar_blocks}), context)
        rows = []
        for index in self.dataset_indices:
            dataset = dataset_for(index, preset, seed)

            # Detection.seconds covers only the core algorithm (the
            # adapters build the uniform result view outside their
            # timer), so the reported wall-clock matches what this table
            # has always measured: raw ensemble fit vs raw Fraudar.
            ensemble_seconds = ensemble.fit(dataset.graph).seconds
            fraudar_seconds = fraudar.fit(dataset.graph).seconds

            paper = PAPER_TABLE3[f"jd{index}"]
            speedup = (
                fraudar_seconds / ensemble_seconds
                if ensemble_seconds > 0
                else float("inf")
            )
            # high-water RSS of this process tree so far: monotonic across
            # rows (ru_maxrss never decreases), so memory regressions show
            # up as a jump in the row that introduced them
            peak_rss = max(peak_rss_bytes(), peak_rss_bytes(include_children=True))
            rows.append(
                {
                    "dataset": dataset.name,
                    "n_edges": dataset.graph.n_edges,
                    "ensemfdet_sec": round(ensemble_seconds, 3),
                    "fraudar_sec": round(fraudar_seconds, 3),
                    "speedup": round(speedup, 2),
                    "s_times_fraudar_sec": round(
                        preset.sample_ratio * fraudar_seconds, 3
                    ),
                    "paper_speedup": round(paper["fraudar"] / paper["ensemfdet"], 2),
                    "peak_rss_mb": round(peak_rss / 1e6, 1),
                }
            )
        return self._result(
            rows,
            scale=preset.name,
            seed=seed,
            sample_ratio=preset.sample_ratio,
            n_samples=preset.n_samples,
            engine=engine,
        )
