"""Experiment drivers — one per table/figure of the paper (see DESIGN.md §4)."""

from .base import SCALES, Experiment, ExperimentResult, ScalePreset, render_table
from .registry import EXPERIMENTS, all_experiment_ids, get_experiment
from .runner import run_experiments

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ScalePreset",
    "SCALES",
    "render_table",
    "EXPERIMENTS",
    "get_experiment",
    "all_experiment_ids",
    "run_experiments",
]
