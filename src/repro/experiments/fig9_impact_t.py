"""Fig. 9 — impact of the voting threshold ``T``.

Paper setting: S = 0.1, N = 80, T ∈ {1..40}, all three datasets. Expected
shape: precision rises and recall falls *monotonically and smoothly* with
T — the property that makes T a usable business knob ("reduce error rate
vs find as many as possible").
"""

from __future__ import annotations

from ..metrics import ensemble_threshold_curve
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale
from .common import dataset_for, fit_ensemble

__all__ = ["Fig9ImpactT"]


class Fig9ImpactT(Experiment):
    """Threshold sweep over T on every dataset (paper Fig. 9)."""

    id = "fig9"
    title = "Fig. 9 — impact of the voting threshold T"
    paper_artifact = "Figure 9"

    dataset_indices = (1, 2, 3)

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        rows = []
        for index in self.dataset_indices:
            dataset = dataset_for(index, preset, seed)
            ensemble = fit_ensemble(dataset, preset, seed)
            # the paper sweeps T up to N/2; sweep the full 1..N here
            thresholds = list(range(1, ensemble.n_samples + 1))
            for point in ensemble_threshold_curve(ensemble, dataset.blacklist, thresholds):
                rows.append({"dataset": dataset.name, "T": int(point.threshold), **point.as_row()})
        return self._result(
            rows,
            scale=preset.name,
            seed=seed,
            n_samples=preset.n_samples,
            sample_ratio=preset.sample_ratio,
        )
