"""Fig. 8 — impact of the sample ratio ``S`` at fixed repetition ``R = S·N``.

Paper setting: S ∈ {0.01, 0.05, 0.1} with S×N = 1. Expected shape: larger
S helps somewhat, but even very small S stays close — the stability that
lets users shrink subgraphs to fit hardware.

Scale note: the paper's S values presuppose fraud blocks with thousands of
edges (so a 1% sample still catches fragments). At 1/50 data scale the
same *relative* sweep is ``{ratio/8, ratio/4, ratio/2, ratio}`` around the
preset's base ratio; the qualitative claim (mild degradation as S shrinks
at fixed R) is what the driver asserts. See EXPERIMENTS.md.
"""

from __future__ import annotations

from ..metrics import ensemble_threshold_curve
from ..sampling import RandomEdgeSampler
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale
from .common import dataset_for, fit_ensemble

__all__ = ["Fig8ImpactS"]


class Fig8ImpactS(Experiment):
    """Parameter sweep over S at fixed R (paper Fig. 8)."""

    id = "fig8"
    title = "Fig. 8 — impact of the sample ratio S at fixed S×N"
    paper_artifact = "Figure 8"

    dataset_index = 3

    def sweep(self, preset: ScalePreset) -> list[tuple[float, int]]:
        """(S, N) pairs with S×N ≈ constant, mirroring the paper's design."""
        base_ratio = preset.sample_ratio
        repetition = max(1.0, base_ratio * preset.n_samples)
        pairs = []
        for divisor in (8, 4, 2, 1):
            ratio = base_ratio / divisor
            n = max(2, int(round(repetition / ratio)))
            pairs.append((ratio, n))
        return pairs

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        dataset = dataset_for(self.dataset_index, preset, seed)
        rows = []
        for ratio, n in self.sweep(preset):
            ensemble = fit_ensemble(
                dataset, preset, seed, sampler=RandomEdgeSampler(ratio), n_samples=n
            )
            for point in ensemble_threshold_curve(ensemble, dataset.blacklist):
                rows.append(
                    {"sample_ratio": round(ratio, 4), "n_samples": n, **point.as_row()}
                )
        return self._result(
            rows,
            scale=preset.name,
            seed=seed,
            dataset=dataset.name,
            repetition_rate=preset.sample_ratio * preset.n_samples,
        )
