"""Fig. 5 — comparison of the four sampling methods inside EnsemFDet.

Run on dataset #3 in the paper (S=0.1, R=8). Expected ordering:

* **Node_PIN_Bagging** (one-side sampling of the sparse user side) is the
  worst — it shatters dense topology (``Davg(merchant) ≫ Davg(PIN)``);
* Node_Merchant_Bagging, Two_sides_Bagging and Random_Edge_Bagging perform
  similarly and much better, demonstrating the "retain topology" principle
  and the method's stability across samplers.
"""

from __future__ import annotations

from ..metrics import ensemble_threshold_curve
from ..sampling import PAPER_FIG5_NAMES, make_sampler
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale
from .common import dataset_for, fit_ensemble, threshold_grid

__all__ = ["Fig5SamplingMethods"]


class Fig5SamplingMethods(Experiment):
    """PR curves per sampling method (paper Fig. 5)."""

    id = "fig5"
    title = "Fig. 5 — sampling-method comparison"
    paper_artifact = "Figure 5"

    #: the paper runs this on dataset #3
    dataset_index = 3

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        dataset = dataset_for(self.dataset_index, preset, seed)
        rows = []
        for name in PAPER_FIG5_NAMES:
            sampler = make_sampler(name, preset.sample_ratio)
            ensemble = fit_ensemble(dataset, preset, seed, sampler=sampler)
            curve = ensemble_threshold_curve(
                ensemble, dataset.blacklist, threshold_grid(ensemble.n_samples)
            )
            for point in curve:
                rows.append({"sampler": name, **point.as_row()})
        return self._result(
            rows,
            scale=preset.name,
            seed=seed,
            dataset=dataset.name,
            repetition_rate=preset.sample_ratio * preset.n_samples,
        )
