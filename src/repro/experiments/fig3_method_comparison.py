"""Fig. 3 — precision-recall comparison of all methods on all datasets.

Paper shape to reproduce (not absolute numbers):

* EnsemFDet and Fraudar clearly dominate the SVD methods on every dataset;
* SpokEn / FBox are unstable across datasets (FBox nearly invalid on #1);
* EnsemFDet traces a dense smooth curve, Fraudar isolated diamond points.

Rows carry ``(dataset, method, threshold, n_detected, precision, recall,
f1)`` — exactly the series needed to redraw Fig. 3(a–c).
"""

from __future__ import annotations

from ..baselines import FBoxDetector, FraudarDetector, SpokenDetector
from ..metrics import (
    CurvePoint,
    ensemble_threshold_curve,
    fraudar_block_curve,
    score_curve,
)
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale
from .common import dataset_for, fit_ensemble, threshold_grid

__all__ = ["Fig3MethodComparison"]


class Fig3MethodComparison(Experiment):
    """PR curves for SpokEn, FBox, Fraudar and EnsemFDet (paper Fig. 3)."""

    id = "fig3"
    title = "Fig. 3 — performance comparison of different methods"
    paper_artifact = "Figure 3"

    #: dataset indices to include (all three in the paper)
    dataset_indices = (1, 2, 3)

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        rows = []
        for index in self.dataset_indices:
            dataset = dataset_for(index, preset, seed)
            blacklist = dataset.blacklist

            ensemble = fit_ensemble(dataset, preset, seed)
            curve = ensemble_threshold_curve(
                ensemble, blacklist, threshold_grid(ensemble.n_samples)
            )
            rows.extend(self._rows(dataset.name, "ensemfdet", curve))

            fraudar = FraudarDetector(n_blocks=preset.fraudar_blocks).detect(dataset.graph)
            rows.extend(
                self._rows(dataset.name, "fraudar", fraudar_block_curve(fraudar, blacklist))
            )

            spoken_scores = SpokenDetector(preset.svd_components).score_users(dataset.graph)
            rows.extend(
                self._rows(
                    dataset.name,
                    "spoken",
                    score_curve(dataset.graph, spoken_scores, blacklist, max_points=40),
                )
            )

            fbox_scores = FBoxDetector(preset.svd_components).score_users(dataset.graph)
            rows.extend(
                self._rows(
                    dataset.name,
                    "fbox",
                    score_curve(dataset.graph, fbox_scores, blacklist, max_points=40),
                )
            )
        return self._result(rows, scale=preset.name, seed=seed)

    @staticmethod
    def _rows(dataset: str, method: str, curve: list[CurvePoint]) -> list[dict]:
        return [
            {"dataset": dataset, "method": method, **point.as_row()} for point in curve
        ]
