"""Fig. 3 — precision-recall comparison of all methods on all datasets.

Paper shape to reproduce (not absolute numbers):

* EnsemFDet and Fraudar clearly dominate the SVD methods on every dataset;
* SpokEn / FBox are unstable across datasets (FBox nearly invalid on #1);
* EnsemFDet traces a dense smooth curve, Fraudar isolated diamond points.

Methods are built through the detector registry
(:func:`repro.detectors.make_detector`) from one shared context, and every
curve comes from the uniform :func:`repro.metrics.detection_curve` — one
loop over specs instead of per-method glue. Rows carry ``(dataset, method,
threshold, n_detected, precision, recall, f1)`` — exactly the series
needed to redraw Fig. 3(a–c).
"""

from __future__ import annotations

from ..detectors import DetectorContext, make_detector
from ..metrics import CurvePoint, detection_curve
from ..parallel import ExecutorMode
from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale
from .common import dataset_for

__all__ = ["Fig3MethodComparison"]


class Fig3MethodComparison(Experiment):
    """PR curves for SpokEn, FBox, Fraudar and EnsemFDet (paper Fig. 3)."""

    id = "fig3"
    title = "Fig. 3 — performance comparison of different methods"
    paper_artifact = "Figure 3"

    #: dataset indices to include (all three in the paper)
    dataset_indices = (1, 2, 3)

    #: operating points kept per curve (the paper's figures stay legible)
    max_curve_points = 40

    @staticmethod
    def detector_specs(preset: ScalePreset) -> list[tuple[str, dict]]:
        """The paper's comparison set as registry specs.

        The ensemble keeps the random-edge sampler the figure always used;
        Fraudar runs at the preset's fixed ``K`` (which differs from the
        per-sample FDET cap at full scale).
        """
        return [
            ("ensemfdet", {"sampler": "res"}),
            ("fraudar", {"n_blocks": preset.fraudar_blocks}),
            ("spoken", {}),
            ("fbox", {}),
        ]

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        context = DetectorContext(
            seed=seed,
            n_samples=preset.n_samples,
            sample_ratio=preset.sample_ratio,
            max_blocks=preset.max_blocks,
            n_components=preset.svd_components,
            executor=ExecutorMode.PROCESS,
        )
        rows = []
        for index in self.dataset_indices:
            dataset = dataset_for(index, preset, seed)
            for name, params in self.detector_specs(preset):
                detection = make_detector((name, params), context).fit(dataset.graph)
                curve = detection_curve(
                    detection, dataset.blacklist, max_points=self.max_curve_points
                )
                rows.extend(self._rows(dataset.name, name, curve))
        return self._result(rows, scale=preset.name, seed=seed)

    @staticmethod
    def _rows(dataset: str, method: str, curve: list[CurvePoint]) -> list[dict]:
        return [
            {"dataset": dataset, "method": method, **point.as_row()} for point in curve
        ]
