"""Fig. 1 — density scores of successively detected blocks.

The paper plots ``φ(G(S_i))`` against the block index ``i`` for several
sampled graphs: every curve decreases monotonically (up to noise) and
flattens at a common low floor, which is what justifies the Δ²-elbow
truncating point. This driver reproduces one row per (sample, block) with
the block's score, whether it is before or after the chosen ``k̂``, and the
per-sample ``k̂`` itself.
"""

from __future__ import annotations

from .base import Experiment, ExperimentResult, ScalePreset, resolve_scale
from .common import dataset_for, fit_ensemble

__all__ = ["Fig1BlockScores"]


class Fig1BlockScores(Experiment):
    """Per-block density series across sampled graphs (paper Fig. 1)."""

    id = "fig1"
    title = "Fig. 1 — scores of detected blocks per sampled graph"
    paper_artifact = "Figure 1"

    #: how many sampled graphs to report (one curve each in the paper plot)
    n_curves = 6

    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        preset = resolve_scale(scale)
        dataset = dataset_for(1, preset, seed)
        result = fit_ensemble(dataset, preset, seed, n_samples=self.n_curves)
        rows = []
        for sample_index, detection in enumerate(result.sample_detections):
            fdet = detection.result
            for block in fdet.all_blocks:
                rows.append(
                    {
                        "sample": sample_index,
                        "block": block.index + 1,
                        "score": round(block.density, 6),
                        "n_users": block.n_users,
                        "kept": block.index < fdet.k_hat,
                        "k_hat": fdet.k_hat,
                    }
                )
        return self._result(
            rows,
            scale=preset.name,
            seed=seed,
            dataset=dataset.name,
            n_curves=self.n_curves,
        )
