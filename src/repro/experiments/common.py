"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

from ..datasets import Dataset, make_jd_dataset
from ..ensemble import EnsemFDet, EnsemFDetConfig, EnsemFDetResult
from ..fdet import FdetConfig, PeelEngine, SecondDifferenceRule, TruncationRule
from ..parallel import ExecutorMode
from ..sampling import RandomEdgeSampler, Sampler
from .base import ScalePreset

__all__ = ["dataset_for", "fit_ensemble", "fdet_config_for", "threshold_grid"]


def dataset_for(index: int, preset: ScalePreset, seed: int) -> Dataset:
    """The JD-like dataset for one experiment run."""
    return make_jd_dataset(index, scale=preset.dataset_scale, seed=seed)


def fdet_config_for(
    preset: ScalePreset,
    truncation: TruncationRule | None = None,
    engine: str | None = None,
) -> FdetConfig:
    """FDET configuration matching a scale preset."""
    return FdetConfig(
        max_blocks=preset.max_blocks,
        truncation=truncation or SecondDifferenceRule(),
        engine=engine or PeelEngine.DEFAULT,
    )


def fit_ensemble(
    dataset: Dataset,
    preset: ScalePreset,
    seed: int,
    sampler: Sampler | None = None,
    n_samples: int | None = None,
    truncation: TruncationRule | None = None,
    executor: str = ExecutorMode.PROCESS,
    engine: str | None = None,
) -> EnsemFDetResult:
    """Fit EnsemFDet with preset-derived defaults (overridable per arg)."""
    config = EnsemFDetConfig(
        sampler=sampler or RandomEdgeSampler(preset.sample_ratio),
        n_samples=n_samples or preset.n_samples,
        fdet=fdet_config_for(preset, truncation, engine),
        executor=executor,
        seed=seed,
    )
    return EnsemFDet(config).fit(dataset.graph)


def threshold_grid(n_samples: int, max_points: int = 40) -> list[int]:
    """Thresholds ``1..N`` subsampled to at most ``max_points`` values."""
    if n_samples <= max_points:
        return list(range(1, n_samples + 1))
    step = n_samples / max_points
    values = sorted({int(round(1 + i * step)) for i in range(max_points)})
    return [t for t in values if 1 <= t <= n_samples]
