"""Experiment-driver infrastructure.

One :class:`Experiment` subclass per paper table/figure. Each ``run`` returns
an :class:`ExperimentResult` — a list of flat row dicts (the numbers the
paper plots) plus provenance metadata — which can be rendered as an ASCII
table or dumped to CSV/JSON under ``results/``.

Experiments accept a :class:`ScalePreset` so the same driver serves CI
("tiny"), the benchmark suite ("small") and a faithful-parameters run
("full", paper's N=80 etc. on the 1/50-scale datasets).
"""

from __future__ import annotations

import csv
import json
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ExperimentError

__all__ = ["ScalePreset", "SCALES", "ExperimentResult", "Experiment", "render_table"]


@dataclass(frozen=True)
class ScalePreset:
    """Knobs that trade fidelity for runtime.

    Attributes
    ----------
    name:
        Preset id ("tiny" / "small" / "full").
    dataset_scale:
        Multiplier on the JD-like dataset sizes (1.0 = 1/50 of the paper).
    n_samples:
        Ensemble size ``N`` (paper: 80).
    sample_ratio:
        Sample ratio ``S``. The paper uses 0.1 on graphs ~50x larger; at
        reduced scale the ratio must grow so that fraud-block *fragments*
        keep enough edges to be visible per sample (see EXPERIMENTS.md).
    max_blocks:
        FDET extraction cap per sampled graph.
    fraudar_blocks:
        Fixed ``K`` for the Fraudar baseline (paper: 30).
    svd_components:
        Components for SpokEn/FBox (paper: 25).
    """

    name: str
    dataset_scale: float
    n_samples: int
    sample_ratio: float
    max_blocks: int = 15
    fraudar_blocks: int = 15
    svd_components: int = 25


SCALES: dict[str, ScalePreset] = {
    "tiny": ScalePreset(
        name="tiny",
        dataset_scale=0.12,
        n_samples=8,
        sample_ratio=0.3,
        max_blocks=8,
        fraudar_blocks=8,
        svd_components=10,
    ),
    "small": ScalePreset(
        name="small",
        dataset_scale=0.3,
        n_samples=16,
        sample_ratio=0.25,
        max_blocks=12,
        fraudar_blocks=12,
        svd_components=25,
    ),
    "full": ScalePreset(
        name="full",
        dataset_scale=1.0,
        n_samples=40,
        sample_ratio=0.2,
        max_blocks=15,
        fraudar_blocks=30,
        svd_components=25,
    ),
}


def resolve_scale(scale: str | ScalePreset) -> ScalePreset:
    """Accept either a preset name or an explicit preset."""
    if isinstance(scale, ScalePreset):
        return scale
    preset = SCALES.get(scale)
    if preset is None:
        raise ExperimentError(f"unknown scale {scale!r}; expected one of {sorted(SCALES)}")
    return preset


@dataclass
class ExperimentResult:
    """Rows + metadata produced by one experiment run."""

    experiment: str
    title: str
    rows: list[dict[str, Any]]
    meta: dict[str, Any] = field(default_factory=dict)

    def to_json(self, path: str | os.PathLike[str]) -> None:
        """Dump rows and metadata as JSON."""
        payload = {
            "experiment": self.experiment,
            "title": self.title,
            "meta": self.meta,
            "rows": self.rows,
        }
        Path(path).write_text(json.dumps(payload, indent=2, default=str), encoding="utf-8")

    def to_csv(self, path: str | os.PathLike[str]) -> None:
        """Dump rows as CSV (columns = union of row keys, first-seen order)."""
        columns: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        with Path(path).open("w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=columns)
            writer.writeheader()
            writer.writerows(self.rows)

    def render(self, max_rows: int | None = 40) -> str:
        """ASCII table of the rows (truncated to ``max_rows``)."""
        header = f"== {self.experiment}: {self.title} =="
        if not self.rows:
            return f"{header}\n(no rows)"
        body = render_table(self.rows, max_rows=max_rows)
        return f"{header}\n{body}"

    def series(self, key: str) -> list[Any]:
        """Extract one column across all rows (missing values skipped)."""
        return [row[key] for row in self.rows if key in row]


def render_table(rows: list[dict[str, Any]], max_rows: int | None = 40) -> str:
    """Render row dicts as an aligned ASCII table."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    shown = rows if max_rows is None else rows[:max_rows]
    table = [[fmt(row.get(col, "")) for col in columns] for row in shown]
    widths = [
        max(len(col), *(len(line[i]) for line in table)) if table else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    lines.extend("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) for line in table)
    if max_rows is not None and len(rows) > max_rows:
        lines.append(f"... ({len(rows) - max_rows} more rows)")
    return "\n".join(lines)


class Experiment(ABC):
    """One paper artifact (table or figure) as a runnable driver."""

    #: experiment id, e.g. "fig3"
    id: str = ""
    #: human title, e.g. "Fig. 3 — method comparison PR curves"
    title: str = ""
    #: which paper artifact this regenerates
    paper_artifact: str = ""

    @abstractmethod
    def run(self, scale: str | ScalePreset = "small", seed: int = 0) -> ExperimentResult:
        """Execute the experiment and return its rows."""

    def _result(self, rows: list[dict[str, Any]], **meta: Any) -> ExperimentResult:
        return ExperimentResult(
            experiment=self.id, title=self.title, rows=rows, meta=meta
        )
