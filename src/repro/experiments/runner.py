"""Command-line experiment runner.

Run every paper table/figure (or a subset) and write artifacts::

    python -m repro.experiments.runner                 # all, small scale
    python -m repro.experiments.runner fig3 table3     # subset
    python -m repro.experiments.runner --scale full --outdir results
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..logging_utils import enable_console_logging, get_logger
from ..parallel import Timer
from .base import SCALES, ExperimentResult
from .registry import all_experiment_ids, get_experiment

__all__ = ["main", "run_experiments"]

_LOG = get_logger("experiments")


def run_experiments(
    experiment_ids: list[str],
    scale: str = "small",
    seed: int = 0,
    outdir: str | None = None,
) -> list[ExperimentResult]:
    """Run the given experiments, optionally writing CSV/JSON artifacts."""
    results = []
    for experiment_id in experiment_ids:
        experiment = get_experiment(experiment_id)
        with Timer() as timer:
            result = experiment.run(scale=scale, seed=seed)
        result.meta["wall_seconds"] = round(timer.elapsed, 3)
        results.append(result)
        if outdir is not None:
            directory = Path(outdir)
            directory.mkdir(parents=True, exist_ok=True)
            result.to_csv(directory / f"{experiment_id}.csv")
            result.to_json(directory / f"{experiment_id}.json")
        _LOG.info("%s finished in %.2fs (%d rows)", experiment_id, timer.elapsed, len(result.rows))
    return results


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"experiment ids (default: all of {', '.join(all_experiment_ids())})",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--outdir", default=None, help="write CSV/JSON artifacts here")
    parser.add_argument("--max-rows", type=int, default=25, help="rows shown per table")
    args = parser.parse_args(argv)

    enable_console_logging()
    ids = args.experiments or all_experiment_ids()
    results = run_experiments(ids, scale=args.scale, seed=args.seed, outdir=args.outdir)
    for result in results:
        print()
        print(result.render(max_rows=args.max_rows))
        if result.meta:
            print(f"meta: {result.meta}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
