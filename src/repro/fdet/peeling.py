"""Greedy min-degree peeling — the inner loop of FDET (Algorithm 1, l.3–8).

Given per-edge weights (and optional per-node priors), repeatedly remove the
node whose removal loses the least total weight, score every intermediate
graph ``H_n ⊃ H_{n-1} ⊃ … ⊃ H_1`` with ``density = weight / |nodes|``, and
return the best prefix. With a lazy-deletion binary heap each removal costs
``O(log(|U|+|V|))``, giving the paper's ``O(|E| log(|U|+|V|))`` bound per
block.

This is Charikar's classic 1/2-approximation for the average-degree
objective, applied to the log-weighted metric exactly as Fraudar does.

Two interchangeable engines implement the peel (select with the ``engine``
argument, or per-detector via :attr:`repro.fdet.FdetConfig.engine`):

* ``"reference"`` — the original pure-Python ``heapq`` walk over the
  graph's CSR adjacency. Easiest to audit; the semantic oracle.
* ``"fast"`` (default) — flat-array backend (:mod:`.peeling_fast`): numpy
  preparation plus a compiled C core (pure-Python fallback). Produces
  bitwise-identical :class:`PeelResult`s — same tie-breaking (smallest node
  id first), same float64 operation order — at a large constant-factor
  speedup, and supports masked re-peels that FDET's no-rebuild outer loop
  relies on.

Pick ``reference`` when debugging or validating a change to the objective;
pick ``fast`` everywhere else.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..errors import DetectionError
from ..graph import BipartiteGraph

__all__ = ["PeelResult", "PeelEngine", "greedy_peel"]


class PeelEngine:
    """Names of the interchangeable peeling backends."""

    REFERENCE = "reference"
    FAST = "fast"
    ALL = (REFERENCE, FAST)
    DEFAULT = FAST


@dataclass(frozen=True)
class PeelResult:
    """Outcome of one full peel of a graph.

    Attributes
    ----------
    user_mask, merchant_mask:
        Boolean masks (over the *input graph's* local indices) selecting the
        densest prefix found.
    density:
        Density score of that prefix.
    n_removed:
        How many nodes were peeled off before the best prefix was reached.
    densities:
        Density after each removal; ``densities[j]`` is the score with ``j``
        nodes removed (``densities[0]`` scores the whole input graph).
    """

    user_mask: np.ndarray
    merchant_mask: np.ndarray
    density: float
    n_removed: int
    densities: np.ndarray

    @property
    def n_users(self) -> int:
        """Users in the detected prefix."""
        return int(self.user_mask.sum())

    @property
    def n_merchants(self) -> int:
        """Merchants in the detected prefix."""
        return int(self.merchant_mask.sum())

    @property
    def n_nodes(self) -> int:
        """Total nodes in the detected prefix."""
        return self.n_users + self.n_merchants

    def edge_indices(self, graph: BipartiteGraph) -> np.ndarray:
        """Indices of ``graph``'s edges inside the detected prefix."""
        mask = self.user_mask[graph.edge_users] & self.merchant_mask[graph.edge_merchants]
        return np.nonzero(mask)[0]


def _empty_result() -> PeelResult:
    return PeelResult(
        user_mask=np.zeros(0, dtype=bool),
        merchant_mask=np.zeros(0, dtype=bool),
        density=0.0,
        n_removed=0,
        densities=np.zeros(0, dtype=np.float64),
    )


def _build_priors(
    n_users: int,
    n_merchants: int,
    user_weights: np.ndarray | None,
    merchant_weights: np.ndarray | None,
) -> np.ndarray:
    """Dense per-node prior array over the combined index space."""
    priors = np.zeros(n_users + n_merchants, dtype=np.float64)
    if user_weights is not None:
        priors[:n_users] = user_weights
    if merchant_weights is not None:
        priors[n_users:] = merchant_weights
    return priors


def resolve_engine(engine: str | None) -> str:
    """Validate an engine name, mapping ``None`` to the default."""
    if engine is None:
        return PeelEngine.DEFAULT
    if engine not in PeelEngine.ALL:
        raise DetectionError(f"engine must be one of {PeelEngine.ALL}, got {engine!r}")
    return engine


def greedy_peel(
    graph: BipartiteGraph,
    edge_weights: np.ndarray,
    user_weights: np.ndarray | None = None,
    merchant_weights: np.ndarray | None = None,
    engine: str | None = None,
) -> PeelResult:
    """Peel ``graph`` greedily and return its densest prefix.

    Parameters
    ----------
    graph:
        The bipartite graph to peel.
    edge_weights:
        One non-negative weight per edge (see
        :meth:`repro.fdet.density.DensityMetric.edge_weights`).
    user_weights, merchant_weights:
        Optional non-negative per-node priors added to the objective.
    engine:
        One of :class:`PeelEngine` (default ``"fast"``). Both engines return
        identical results; see the module docstring.

    Notes
    -----
    Ties are broken by heap order (smallest node id first), which makes the
    peel deterministic for a given input — under either engine.
    """
    if edge_weights.shape[0] != graph.n_edges:
        raise DetectionError("edge_weights length does not match graph edge count")
    if graph.n_nodes == 0:
        return _empty_result()
    priors = _build_priors(graph.n_users, graph.n_merchants, user_weights, merchant_weights)
    if resolve_engine(engine) == PeelEngine.FAST:
        from .peeling_fast import fast_peel  # deferred to avoid a module cycle

        return fast_peel(graph, edge_weights, priors)
    return _reference_peel(graph, edge_weights, priors)


def _reference_peel(
    graph: BipartiteGraph,
    edge_weights: np.ndarray,
    priors: np.ndarray,
) -> PeelResult:
    """The original heapq engine — the oracle the fast engine must match."""
    n_users = graph.n_users
    n = n_users + graph.n_merchants

    # current "priority" of a node = prior + sum of alive incident edge weights;
    # removing the node decreases the total objective by exactly this amount.
    priority = priors.copy()
    np.add.at(priority, graph.edge_users, edge_weights)
    np.add.at(priority, n_users + graph.edge_merchants, edge_weights)

    user_indptr, user_edge_idx = graph.user_adjacency()
    merchant_indptr, merchant_edge_idx = graph.merchant_adjacency()
    edge_users = graph.edge_users
    edge_merchants = graph.edge_merchants

    total = float(priors.sum() + edge_weights.sum())
    alive = np.ones(n, dtype=bool)
    edge_alive = np.ones(graph.n_edges, dtype=bool)
    heap: list[tuple[float, int]] = [(float(priority[node]), node) for node in range(n)]
    heapq.heapify(heap)

    densities = np.empty(n, dtype=np.float64)
    densities[0] = total / n
    removal_order = np.empty(n, dtype=np.int64)

    best_density = densities[0]
    best_removed = 0
    n_alive = n
    removed = 0

    while n_alive > 1:
        current_priority, node = heapq.heappop(heap)
        if not alive[node] or current_priority > priority[node] + 1e-12:
            continue  # stale heap entry (node removed or priority since lowered)
        alive[node] = False
        removal_order[removed] = node
        removed += 1
        n_alive -= 1
        total -= float(priority[node])

        # retire the node's alive incident edges, lowering neighbours
        if node < n_users:
            span = user_edge_idx[user_indptr[node] : user_indptr[node + 1]]
            for edge in span.tolist():
                if edge_alive[edge]:
                    edge_alive[edge] = False
                    other = n_users + int(edge_merchants[edge])
                    priority[other] -= edge_weights[edge]
                    heapq.heappush(heap, (float(priority[other]), other))
        else:
            merchant = node - n_users
            span = merchant_edge_idx[merchant_indptr[merchant] : merchant_indptr[merchant + 1]]
            for edge in span.tolist():
                if edge_alive[edge]:
                    edge_alive[edge] = False
                    other = int(edge_users[edge])
                    priority[other] -= edge_weights[edge]
                    heapq.heappush(heap, (float(priority[other]), other))

        density = total / n_alive
        densities[removed] = density
        if density > best_density:
            best_density = density
            best_removed = removed

    # reconstruct the best prefix: nodes still alive after `best_removed` pops
    keep = np.ones(n, dtype=bool)
    keep[removal_order[:best_removed]] = False
    return PeelResult(
        user_mask=keep[:n_users],
        merchant_mask=keep[n_users:],
        density=float(best_density),
        n_removed=int(best_removed),
        densities=densities[: removed + 1].copy(),
    )
