/* Greedy min-priority peeling kernel.
 *
 * Exact replica of the reference engine in ``repro/fdet/peeling.py``: a lazy
 * binary min-heap over (priority, node) pairs with lexicographic ordering,
 * the reference's 1e-12 stale-entry tolerance, and the same sequential
 * float64 arithmetic (per-edge subtraction in CSR span order, running-total
 * subtraction at each pop). Because every floating-point operation happens
 * in the same order on the same IEEE-754 doubles, the removal order, the
 * densities series and the best prefix are bitwise identical to the pure
 * Python implementation.
 *
 * The kernel is dependency-free C (no Python.h) so it can be compiled once
 * with any system C compiler and loaded through ctypes; see ``_native.py``.
 *
 * Graph encoding: a flattened adjacency over the combined node index space
 * (users ``0..n_users-1``, merchants ``n_users..n-1``). ``indptr`` has n+1
 * entries; the incident half-edges of node ``v`` are
 * ``flat_other[indptr[v]:indptr[v+1]]`` (the opposite endpoint) with
 * per-half-edge weights ``flat_w``. An edge dies when its first endpoint is
 * popped, so a half-edge is alive exactly when its opposite endpoint is.
 */

#include <stdint.h>
#include <stdlib.h>

typedef struct {
    double p;
    int64_t node;
} entry_t;

static inline int entry_lt(entry_t a, entry_t b)
{
    return a.p < b.p || (a.p == b.p && a.node < b.node);
}

static inline void sift_down(entry_t *heap, int64_t size, int64_t i)
{
    entry_t v = heap[i];
    for (;;) {
        int64_t child = 2 * i + 1;
        if (child >= size)
            break;
        if (child + 1 < size && entry_lt(heap[child + 1], heap[child]))
            child++;
        if (!entry_lt(heap[child], v))
            break;
        heap[i] = heap[child];
        i = child;
    }
    heap[i] = v;
}

static inline void sift_up(entry_t *heap, int64_t i)
{
    entry_t v = heap[i];
    while (i > 0) {
        int64_t parent = (i - 1) / 2;
        if (!entry_lt(v, heap[parent]))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = v;
}

/* Peel the graph to a single node, recording the removal order and the
 * density after every removal.
 *
 * prio            in/out: per-node priority (prior + alive incident weight);
 *                 left at its final state on return.
 * total           objective value of the whole graph.
 * removal_order   out: node popped at each step (capacity n).
 * densities       out: densities[j] = score with j nodes removed
 *                 (capacity n; densities[0] scores the whole graph).
 * best_density/best_removed  out: the densest prefix found.
 *
 * Returns the number of nodes removed, or -1 if allocation failed (the
 * caller falls back to the Python engine).
 */
int64_t repro_greedy_peel(
    int64_t n,
    const int64_t *indptr,
    const int64_t *flat_other,
    const double *flat_w,
    double *prio,
    double total,
    int64_t *removal_order,
    double *densities,
    double *best_density_out,
    int64_t *best_removed_out)
{
    if (n <= 0)
        return 0;
    int64_t n_flat = indptr[n];
    /* every node gets an initial entry; every half-edge retirement pushes
     * at most one more */
    entry_t *heap = (entry_t *)malloc((size_t)(n + n_flat + 1) * sizeof(entry_t));
    uint8_t *alive = (uint8_t *)malloc((size_t)n);
    if (!heap || !alive) {
        free(heap);
        free(alive);
        return -1;
    }

    for (int64_t i = 0; i < n; i++) {
        heap[i].p = prio[i];
        heap[i].node = i;
        alive[i] = 1;
    }
    int64_t heap_size = n;
    for (int64_t i = n / 2 - 1; i >= 0; i--)
        sift_down(heap, heap_size, i);

    densities[0] = total / (double)n;
    double best_density = densities[0];
    int64_t best_removed = 0;
    int64_t n_alive = n;
    int64_t removed = 0;

    while (n_alive > 1 && heap_size > 0) {
        entry_t top = heap[0];
        heap[0] = heap[--heap_size];
        if (heap_size > 0)
            sift_down(heap, heap_size, 0);
        int64_t node = top.node;
        if (!alive[node] || top.p > prio[node] + 1e-12)
            continue; /* stale entry */
        alive[node] = 0;
        removal_order[removed++] = node;
        n_alive--;
        total -= prio[node];

        for (int64_t j = indptr[node]; j < indptr[node + 1]; j++) {
            int64_t other = flat_other[j];
            if (alive[other]) {
                double updated = prio[other] - flat_w[j];
                prio[other] = updated;
                heap[heap_size].p = updated;
                heap[heap_size].node = other;
                sift_up(heap, heap_size);
                heap_size++;
            }
        }

        double density = total / (double)n_alive;
        densities[removed] = density;
        if (density > best_density) {
            best_density = density;
            best_removed = removed;
        }
    }

    free(heap);
    free(alive);
    *best_density_out = best_density;
    *best_removed_out = best_removed;
    return removed;
}
