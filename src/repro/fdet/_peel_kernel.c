/* Native peeling kernels: single-graph greedy peel + batched multi-member FDET.
 *
 * Everything in this file is an exact replica of the Python reference path —
 * same float64 operations in the same order on the same values — so results
 * are bitwise identical to the pure-Python engines. Two entry points:
 *
 * ``repro_greedy_peel``
 *     One peel of one flattened graph (the historical kernel ABI). The
 *     internals are the ``_python_core`` algorithm of ``peeling_fast.py``: the
 *     initial per-node entries live in a radix-sorted "clean" stream consumed
 *     by a moving pointer, and only re-prioritised nodes enter a small binary
 *     "hot" heap. Under the shared lazy-deletion rule (lexicographic
 *     ``(priority, node)`` order, ``1e-12`` stale tolerance) the accepted pop
 *     sequence is identical to the reference heap's, at a fraction of the
 *     heap traffic.
 *
 * ``repro_fdet_batch``
 *     The full FDET block loop for MANY ensemble members in one call: the
 *     parent edge arrays are shared read-only, each member is described by a
 *     list of parent edge ids (in member order), and the kernel performs node
 *     compaction, CSR construction, per-block degree/weight/priority
 *     preparation, the peel, and block bookkeeping — everything the Python
 *     ``Fdet.detect`` + ``fast_peel`` pair does per member, without
 *     materialising a subgraph object. Members are independent; with OpenMP
 *     the loop runs ``n_threads`` wide (serial otherwise).
 *
 * Bitwise-parity notes (enforced by tests/fdet/test_batched_parity.py):
 *   - ``pairwise_sum`` replicates numpy's scalar pairwise summation
 *     (8 accumulator lanes, 128-element blocks, halved recursion) so
 *     ``edge_weights.sum()`` matches ``np.sum`` bit for bit. A Python-side
 *     probe verifies this at load time and disables the batch path on hosts
 *     where numpy sums differently.
 *   - ``np.add.at`` is unbuffered sequential addition in index order — the
 *     priority-init loops below mirror it exactly.
 *   - ``np.unique(x, return_inverse=True)`` on bounded non-negative ints is a
 *     presence scan + running rank — the node-compaction loops below.
 *   - A stable counting sort by endpoint equals numpy's stable argsort used
 *     by ``BipartiteGraph._build_adjacency``.
 *   - The radix sort key normalises ``-0.0`` to ``+0.0``: the comparator
 *     treats them equal (node id breaks the tie) but their raw bit patterns
 *     would order them apart.
 *
 * Dependency-free C (no Python.h); compiled on demand via ``_native.py``.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* pairwise summation — replica of numpy's scalar pairwise_sum_DOUBLE  */
/* ------------------------------------------------------------------ */

#define PW_BLOCKSIZE 128

static double pairwise_sum(const double *a, int64_t n)
{
    if (n < 8) {
        double res = 0.0;
        for (int64_t i = 0; i < n; i++)
            res += a[i];
        return res;
    }
    if (n <= PW_BLOCKSIZE) {
        double r[8];
        for (int k = 0; k < 8; k++)
            r[k] = a[k];
        int64_t i;
        for (i = 8; i < n - (n % 8); i += 8) {
            r[0] += a[i + 0];
            r[1] += a[i + 1];
            r[2] += a[i + 2];
            r[3] += a[i + 3];
            r[4] += a[i + 4];
            r[5] += a[i + 5];
            r[6] += a[i + 6];
            r[7] += a[i + 7];
        }
        double res = ((r[0] + r[1]) + (r[2] + r[3])) + ((r[4] + r[5]) + (r[6] + r[7]));
        for (; i < n; i++)
            res += a[i];
        return res;
    }
    {
        int64_t n2 = n / 2;
        n2 -= n2 % 8;
        return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
    }
}

double repro_pairwise_sum(const double *a, int64_t n)
{
    return pairwise_sum(a, n);
}

/* ------------------------------------------------------------------ */
/* hot heap: binary min-heap of (priority, node), lexicographic        */
/* ------------------------------------------------------------------ */

/* Entries carry the priority as its monotone uint64 ``sort_key`` image
 * rather than the raw double: key order equals double order (with the
 * two zeros collapsed, exactly like the comparator treats them), so the
 * heap does single integer compares instead of float compare pairs. The
 * original double is recovered with ``key_to_double`` only at the one
 * place that needs it — the stale-entry tolerance check. */
typedef struct {
    uint64_t k;
    int64_t node;
} entry_t;

static inline int entry_lt(entry_t a, entry_t b)
{
    return a.k < b.k || (a.k == b.k && a.node < b.node);
}

/* The heap is 4-ary: pushes outnumber pops ~3:2 in the peel and both walk
 * half the levels of a binary heap. Arity is a pure layout choice — any
 * min-heap surfaces the same (key, node) minima in the same order (equal
 * duplicates are interchangeable), so the accepted pop sequence, and with
 * it bitwise parity, is unaffected. */
static inline void sift_down(entry_t *heap, int64_t size, int64_t i)
{
    entry_t v = heap[i];
    for (;;) {
        int64_t child = 4 * i + 1;
        if (child >= size)
            break;
        int64_t m = child;
        int64_t end = child + 4 < size ? child + 4 : size;
        for (int64_t j = child + 1; j < end; j++)
            if (entry_lt(heap[j], heap[m]))
                m = j;
        if (!entry_lt(heap[m], v))
            break;
        heap[i] = heap[m];
        i = m;
    }
    heap[i] = v;
}

static inline void sift_up(entry_t *heap, int64_t i)
{
    entry_t v = heap[i];
    while (i > 0) {
        int64_t parent = (i - 1) / 4;
        if (!entry_lt(v, heap[parent]))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = v;
}

/* ------------------------------------------------------------------ */
/* radix sort of (double key, node) pairs                              */
/* ------------------------------------------------------------------ */

/* Monotone uint64 image of an IEEE double: flips the sign bit for
 * non-negatives and all bits for negatives, after normalising -0.0 to
 * +0.0 so the two zeros tie (node id then decides, matching the
 * lexicographic comparator). */
static inline uint64_t sort_key(double v)
{
    uint64_t bits;
    if (v == 0.0)
        v = 0.0; /* collapse -0.0 onto +0.0 */
    memcpy(&bits, &v, sizeof(bits));
    return (bits & 0x8000000000000000ULL) ? ~bits : (bits | 0x8000000000000000ULL);
}

/* Inverse of sort_key up to the -0.0/+0.0 collapse (both map back to +0.0,
 * which compares equal to -0.0 everywhere the value is used). */
static inline double key_to_double(uint64_t k)
{
    uint64_t bits = (k & 0x8000000000000000ULL) ? (k & 0x7FFFFFFFFFFFFFFFULL) : ~k;
    double v;
    memcpy(&v, &bits, sizeof(v));
    return v;
}

/* Stable LSD radix sort of keys[] with int64 payload vals[]; both scratch
 * buffers must hold n entries. Ends with the sorted data back in keys/vals.
 *
 * Six 11-bit digits cover the 64-bit key (the top pass sees 9 real bits),
 * and all six histograms are built in ONE scan of the input — the per-pass
 * counting reads of the classic formulation are the radix's main memory
 * traffic, so fusing them nearly halves it. A pass whose digit is constant
 * across all keys is skipped as an identity (stability makes that exact);
 * the histograms stay valid for later passes because a stable pass permutes
 * entries without changing any digit counts. */
static void radix_sort_pairs(
    uint64_t *keys, int64_t *vals, uint64_t *keys_tmp, int64_t *vals_tmp, int64_t n)
{
    enum { RADIX_PASSES = 6, RADIX_BINS = 2048 };
    if (n <= 1)
        return;
    int64_t counts[RADIX_PASSES][RADIX_BINS];
    memset(counts, 0, sizeof(counts));
    for (int64_t i = 0; i < n; i++) {
        uint64_t k = keys[i];
        for (int p = 0; p < RADIX_PASSES; p++)
            counts[p][(k >> (11 * p)) & 0x7FF]++;
    }
    uint64_t *ks = keys, *kd = keys_tmp;
    int64_t *vs = vals, *vd = vals_tmp;
    for (int p = 0; p < RADIX_PASSES; p++) {
        int64_t *c = counts[p];
        int shift = 11 * p;
        if (c[(ks[0] >> shift) & 0x7FF] == n)
            continue; /* all entries share this digit: the pass is identity */
        int64_t pos = 0;
        for (int b = 0; b < RADIX_BINS; b++) {
            int64_t t = c[b];
            c[b] = pos;
            pos += t;
        }
        for (int64_t i = 0; i < n; i++) {
            int64_t d = (int64_t)((ks[i] >> shift) & 0x7FF);
            kd[c[d]] = ks[i];
            vd[c[d]] = vs[i];
            c[d]++;
        }
        uint64_t *tk = ks;
        int64_t *tv = vs;
        ks = kd;
        vs = vd;
        kd = tk;
        vd = tv;
    }
    if (ks != keys) {
        memcpy(keys, ks, (size_t)n * sizeof(uint64_t));
        memcpy(vals, vs, (size_t)n * sizeof(int64_t));
    }
}

/* ------------------------------------------------------------------ */
/* peel core: clean stream + hot heap                                  */
/* ------------------------------------------------------------------ */

typedef struct {
    uint64_t *keys;
    uint64_t *keys_tmp;
    int64_t *clean_nodes;
    int64_t *nodes_tmp;
    double *clean_values;
    entry_t *hot;
    uint8_t *alive;
} peel_scratch_t;

/* Returns non-zero on allocation failure. n_flat bounds hot-heap pushes. */
static int scratch_alloc(peel_scratch_t *s, int64_t n, int64_t n_flat)
{
    memset(s, 0, sizeof(*s));
    s->keys = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
    s->keys_tmp = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
    s->clean_nodes = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    s->nodes_tmp = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    s->clean_values = (double *)malloc((size_t)n * sizeof(double));
    s->hot = (entry_t *)malloc((size_t)(n_flat + 1) * sizeof(entry_t));
    s->alive = (uint8_t *)malloc((size_t)n);
    return !(s->keys && s->keys_tmp && s->clean_nodes && s->nodes_tmp
             && s->clean_values && s->hot && s->alive);
}

static void scratch_free(peel_scratch_t *s)
{
    free(s->keys);
    free(s->keys_tmp);
    free(s->clean_nodes);
    free(s->nodes_tmp);
    free(s->clean_values);
    free(s->hot);
    free(s->alive);
}

/* Peel the flattened graph down to one node. Mutates prio in place (left at
 * its final state, like the reference). densities may be NULL when the
 * caller only needs the best prefix. Returns the number of nodes removed. */
static int64_t fast_peel_core(
    int64_t n,
    const int64_t *indptr,
    const int64_t *flat_other,
    const double *flat_w,
    double *prio,
    double total,
    int64_t *removal_order,
    double *densities,
    double *best_density_out,
    int64_t *best_removed_out,
    peel_scratch_t *s)
{
    uint8_t *alive = s->alive;
    entry_t *hot = s->hot;
    double *clean_values = s->clean_values;
    int64_t *clean_nodes = s->clean_nodes;
    const uint64_t *clean_keys = s->keys;

    for (int64_t i = 0; i < n; i++) {
        s->keys[i] = sort_key(prio[i]);
        clean_nodes[i] = i;
        alive[i] = 1;
    }
    radix_sort_pairs(s->keys, clean_nodes, s->keys_tmp, s->nodes_tmp, n);
    for (int64_t i = 0; i < n; i++)
        clean_values[i] = prio[clean_nodes[i]];

    double best_density = total / (double)n;
    if (densities)
        densities[0] = best_density;
    int64_t best_removed = 0;
    int64_t n_alive = n;
    int64_t removed = 0;
    int64_t clean_pos = 0;
    int64_t hot_size = 0;

    while (n_alive > 1) {
        int64_t node;
        /* hot-vs-clean on packed keys: key order is double order with the
         * two zeros collapsed, which is exactly how the lexicographic
         * comparator ranks them, so this picks the same winner. */
        if (hot_size > 0
            && (clean_pos >= n || hot[0].k < clean_keys[clean_pos]
                || (hot[0].k == clean_keys[clean_pos]
                    && hot[0].node < clean_nodes[clean_pos]))) {
            entry_t top = hot[0];
            hot[0] = hot[--hot_size];
            if (hot_size > 0)
                sift_down(hot, hot_size, 0);
            node = top.node;
            if (!alive[node] || key_to_double(top.k) > prio[node] + 1e-12)
                continue; /* stale hot entry */
        } else if (clean_pos < n) {
            node = clean_nodes[clean_pos];
            double value = clean_values[clean_pos];
            clean_pos++;
            if (!alive[node] || value > prio[node] + 1e-12)
                continue; /* node popped or re-prioritised since the sort */
        } else {
            break; /* unreachable: every alive node always has an entry */
        }

        alive[node] = 0;
        removal_order[removed++] = node;
        n_alive--;
        total -= prio[node];

        for (int64_t j = indptr[node]; j < indptr[node + 1]; j++) {
            int64_t other = flat_other[j];
            if (alive[other]) {
                double updated = prio[other] - flat_w[j];
                prio[other] = updated;
                hot[hot_size].k = sort_key(updated);
                hot[hot_size].node = other;
                sift_up(hot, hot_size);
                hot_size++;
            }
        }

        double density = total / (double)n_alive;
        if (densities)
            densities[removed] = density;
        if (density > best_density) {
            best_density = density;
            best_removed = removed;
        }
    }

    *best_density_out = best_density;
    *best_removed_out = best_removed;
    return removed;
}

/* ------------------------------------------------------------------ */
/* single-peel entry point (historical ABI, new internals)             */
/* ------------------------------------------------------------------ */

int64_t repro_greedy_peel(
    int64_t n,
    const int64_t *indptr,
    const int64_t *flat_other,
    const double *flat_w,
    double *prio,
    double total,
    int64_t *removal_order,
    double *densities,
    double *best_density_out,
    int64_t *best_removed_out)
{
    if (n <= 0)
        return 0;
    peel_scratch_t scratch;
    if (scratch_alloc(&scratch, n, indptr[n])) {
        scratch_free(&scratch);
        return -1;
    }
    int64_t removed = fast_peel_core(
        n, indptr, flat_other, flat_w, prio, total, removal_order, densities,
        best_density_out, best_removed_out, &scratch);
    scratch_free(&scratch);
    return removed;
}

/* ------------------------------------------------------------------ */
/* batched multi-member FDET                                           */
/* ------------------------------------------------------------------ */

/* The parent columns arrive in their *storage* dtype (compact stores keep
 * int32 ids / float32 weights on disk and in shm) and are widened at the
 * single load site: int32 -> int64 is exact, and (double)w32 reproduces the
 * float64 value exactly because compaction only narrows weights whose
 * round-trip is bit-exact. Everything downstream of these loads is
 * int64/double, so compact and wide parents peel bitwise-identically. */
static inline int64_t load_idx(const void *p, int64_t width, int64_t i)
{
    return width == 4 ? (int64_t)((const int32_t *)p)[i] : ((const int64_t *)p)[i];
}

static inline double load_w(const void *p, int64_t width, int64_t i)
{
    return width == 4 ? (double)((const float *)p)[i] : ((const double *)p)[i];
}

typedef struct {
    /* parent graph (read-only, shared across members) */
    int64_t pn_users;
    int64_t pn_merchants;
    const void *p_eu;  /* int32 or int64 per idx_width */
    const void *p_em;
    int64_t idx_width; /* endpoint itemsize in bytes: 4 or 8 */
    const void *p_w;   /* float or double per w_width; NULL when unweighted */
    int64_t w_width;   /* weight itemsize in bytes: 4 or 8 */
    const double *weight_table; /* merchant degree -> edge multiplier */
    /* member descriptions */
    const int64_t *edge_ids;
    const int64_t *edge_off;
    const double *scales;
    /* FDET config */
    int64_t max_blocks;
    int64_t min_block_edges;
    double min_density_ratio;
    int64_t frozen_policy;
    /* outputs */
    int64_t *out_status;
    int64_t *out_nu;
    int64_t *out_nm;
    int64_t *kept_users;
    const int64_t *ku_off;
    int64_t *kept_merchants;
    const int64_t *km_off;
    int64_t *out_n_blocks;
    double *block_density;
    int64_t *block_n_edges;
    uint8_t *block_masks;
    const int64_t *mask_off;
} batch_args_t;

/* One member's full FDET run (Algorithm 1): node compaction, CSR build,
 * block loop with residual weights, peel, mask bookkeeping. Sets
 * out_status[m] = -1 on allocation failure (the caller re-runs the member
 * through the Python path). */
static void run_member(const batch_args_t *a, int64_t m)
{
    int64_t me = a->edge_off[m + 1] - a->edge_off[m];
    const int64_t *ids = a->edge_ids + a->edge_off[m];
    double scale = a->scales[m];

    a->out_status[m] = 0;
    a->out_n_blocks[m] = 0;
    a->out_nu[m] = 0;
    a->out_nm[m] = 0;
    if (me == 0)
        return; /* empty sample: no nodes, no blocks (k_hat = 0) */

    uint8_t *present_u = NULL, *present_m = NULL, *edge_alive = NULL, *keep = NULL;
    int64_t *remap_u = NULL, *remap_m = NULL, *mu = NULL, *mm = NULL;
    int64_t *indptr = NULL, *flat_edge = NULL, *flat_other = NULL, *fill = NULL;
    int64_t *sub_indptr = NULL, *sub_other = NULL, *removal_order = NULL;
    int64_t *deg = NULL, *deg_frozen = NULL;
    double *mw = NULL, *full_w = NULL, *ew = NULL, *sub_w = NULL, *prio = NULL;
    peel_scratch_t scratch;
    memset(&scratch, 0, sizeof(scratch));
    int scratch_ok = 0;

    /* ---- node compaction: np.unique(endpoints, return_inverse=True) ---- */
    present_u = (uint8_t *)calloc((size_t)a->pn_users, 1);
    present_m = (uint8_t *)calloc((size_t)a->pn_merchants, 1);
    remap_u = (int64_t *)malloc((size_t)a->pn_users * sizeof(int64_t));
    remap_m = (int64_t *)malloc((size_t)a->pn_merchants * sizeof(int64_t));
    mu = (int64_t *)malloc((size_t)me * sizeof(int64_t));
    mm = (int64_t *)malloc((size_t)me * sizeof(int64_t));
    mw = (double *)malloc((size_t)me * sizeof(double));
    if (!present_u || !present_m || !remap_u || !remap_m || !mu || !mm || !mw)
        goto alloc_failed;

    for (int64_t i = 0; i < me; i++) {
        present_u[load_idx(a->p_eu, a->idx_width, ids[i])] = 1;
        present_m[load_idx(a->p_em, a->idx_width, ids[i])] = 1;
    }
    int64_t nu = 0, nm = 0;
    {
        int64_t *ku = a->kept_users + a->ku_off[m];
        for (int64_t u = 0; u < a->pn_users; u++)
            if (present_u[u]) {
                ku[nu] = u;
                remap_u[u] = nu++;
            }
        int64_t *km = a->kept_merchants + a->km_off[m];
        for (int64_t v = 0; v < a->pn_merchants; v++)
            if (present_m[v]) {
                km[nm] = v;
                remap_m[v] = nm++;
            }
    }
    a->out_nu[m] = nu;
    a->out_nm[m] = nm;
    for (int64_t i = 0; i < me; i++) {
        int64_t e = ids[i];
        mu[i] = remap_u[load_idx(a->p_eu, a->idx_width, e)];
        mm[i] = remap_m[load_idx(a->p_em, a->idx_width, e)];
        /* weights_or_ones() * weight_scale; x * 1.0 is an exact identity */
        mw[i] = (a->p_w ? load_w(a->p_w, a->w_width, e) : 1.0) * scale;
    }
    free(present_u);
    free(present_m);
    free(remap_u);
    free(remap_m);
    present_u = present_m = NULL;
    remap_u = remap_m = NULL;

    /* ---- per-member scratch ---- */
    {
        int64_t n = nu + nm;
        int64_t n_flat = 2 * me;
        indptr = (int64_t *)malloc((size_t)(n + 1) * sizeof(int64_t));
        fill = (int64_t *)malloc((size_t)(n + 1) * sizeof(int64_t));
        flat_edge = (int64_t *)malloc((size_t)n_flat * sizeof(int64_t));
        flat_other = (int64_t *)malloc((size_t)n_flat * sizeof(int64_t));
        sub_indptr = (int64_t *)malloc((size_t)(n + 1) * sizeof(int64_t));
        sub_other = (int64_t *)malloc((size_t)n_flat * sizeof(int64_t));
        sub_w = (double *)malloc((size_t)n_flat * sizeof(double));
        full_w = (double *)malloc((size_t)me * sizeof(double));
        ew = (double *)malloc((size_t)me * sizeof(double));
        prio = (double *)malloc((size_t)n * sizeof(double));
        deg = (int64_t *)malloc((size_t)nm * sizeof(int64_t));
        edge_alive = (uint8_t *)malloc((size_t)me);
        removal_order = (int64_t *)malloc((size_t)n * sizeof(int64_t));
        keep = (uint8_t *)malloc((size_t)n);
        if (!indptr || !fill || !flat_edge || !flat_other || !sub_indptr
            || !sub_other || !sub_w || !full_w || !ew || !prio || !deg
            || !edge_alive || !removal_order || !keep)
            goto alloc_failed;
        if (scratch_alloc(&scratch, n, n_flat))
            goto alloc_failed;
        scratch_ok = 1;

        /* ---- combined CSR: user spans then merchant spans, each span in
         * edge order (== numpy's stable argsort by endpoint) ---- */
        memset(indptr, 0, (size_t)(n + 1) * sizeof(int64_t));
        for (int64_t i = 0; i < me; i++)
            indptr[mu[i] + 1]++;
        for (int64_t i = 0; i < me; i++)
            indptr[nu + mm[i] + 1]++;
        for (int64_t v = 0; v < n; v++)
            indptr[v + 1] += indptr[v];
        memcpy(fill, indptr, (size_t)(n + 1) * sizeof(int64_t));
        for (int64_t i = 0; i < me; i++) {
            int64_t pos = fill[mu[i]]++;
            flat_edge[pos] = i;
            flat_other[pos] = nu + mm[i];
        }
        for (int64_t i = 0; i < me; i++) {
            int64_t pos = fill[nu + mm[i]]++;
            flat_edge[pos] = i;
            flat_other[pos] = mu[i];
        }

        if (a->frozen_policy) {
            deg_frozen = (int64_t *)malloc((size_t)nm * sizeof(int64_t));
            if (!deg_frozen)
                goto alloc_failed;
            memset(deg_frozen, 0, (size_t)nm * sizeof(int64_t));
            for (int64_t i = 0; i < me; i++)
                deg_frozen[mm[i]]++;
        }

        /* ---- the FDET block loop ---- */
        memset(edge_alive, 1, (size_t)me);
        int64_t n_alive_edges = me;
        int64_t n_blocks = 0;
        double first_density = 0.0;
        int have_first = 0;
        int64_t row_bytes = (n + 7) / 8;

        for (int64_t b = 0; b < a->max_blocks; b++) {
            if (n_alive_edges == 0)
                break;

            const int64_t *deg_cur = deg_frozen;
            if (!a->frozen_policy) {
                memset(deg, 0, (size_t)nm * sizeof(int64_t));
                for (int64_t i = 0; i < me; i++)
                    if (edge_alive[i])
                        deg[mm[i]]++;
                deg_cur = deg;
            }

            /* residual edge weights: table[degree] * member weight, in
             * residual (compacted) edge order */
            int64_t r = 0;
            for (int64_t i = 0; i < me; i++)
                if (edge_alive[i]) {
                    double w = a->weight_table[deg_cur[mm[i]]] * mw[i];
                    ew[r++] = w;
                    full_w[i] = w;
                }

            /* priority = priors.copy() (zeros) + two np.add.at passes */
            for (int64_t v = 0; v < n; v++)
                prio[v] = 0.0;
            for (int64_t i = 0; i < me; i++)
                if (edge_alive[i])
                    prio[mu[i]] += full_w[i];
            for (int64_t i = 0; i < me; i++)
                if (edge_alive[i])
                    prio[nu + mm[i]] += full_w[i];

            /* float(priors.sum() + edge_weights.sum()) */
            double total = 0.0 + pairwise_sum(ew, r);

            /* adjacency restricted to alive edges (span order kept) */
            const int64_t *use_indptr;
            const int64_t *use_other;
            if (n_alive_edges == me) {
                use_indptr = indptr;
                use_other = flat_other;
                for (int64_t j = 0; j < n_flat; j++)
                    sub_w[j] = full_w[flat_edge[j]];
            } else {
                int64_t pos = 0;
                for (int64_t v = 0; v < n; v++) {
                    sub_indptr[v] = pos;
                    for (int64_t j = indptr[v]; j < indptr[v + 1]; j++) {
                        int64_t e = flat_edge[j];
                        if (edge_alive[e]) {
                            sub_other[pos] = flat_other[j];
                            sub_w[pos] = full_w[e];
                            pos++;
                        }
                    }
                }
                sub_indptr[n] = pos;
                use_indptr = sub_indptr;
                use_other = sub_other;
            }

            double best_density;
            int64_t best_removed;
            fast_peel_core(
                n, use_indptr, use_other, sub_w, prio, total, removal_order,
                NULL, &best_density, &best_removed, &scratch);

            memset(keep, 1, (size_t)n);
            for (int64_t i = 0; i < best_removed; i++)
                keep[removal_order[i]] = 0;

            int64_t count = 0;
            for (int64_t i = 0; i < me; i++)
                if (edge_alive[i] && keep[mu[i]] && keep[nu + mm[i]])
                    count++;
            if (count < a->min_block_edges)
                break;

            uint8_t *row = a->block_masks + a->mask_off[m] + n_blocks * row_bytes;
            memset(row, 0, (size_t)row_bytes);
            for (int64_t v = 0; v < n; v++)
                if (keep[v])
                    row[v >> 3] |= (uint8_t)(1u << (v & 7));
            a->block_density[m * a->max_blocks + n_blocks] = best_density;
            a->block_n_edges[m * a->max_blocks + n_blocks] = count;
            n_blocks++;

            if (!have_first) {
                first_density = best_density;
                have_first = 1;
            } else if (a->min_density_ratio > 0.0
                       && best_density < a->min_density_ratio * first_density) {
                break;
            }

            for (int64_t i = 0; i < me; i++)
                if (edge_alive[i] && keep[mu[i]] && keep[nu + mm[i]])
                    edge_alive[i] = 0;
            n_alive_edges -= count;
        }
        a->out_n_blocks[m] = n_blocks;
    }
    goto cleanup;

alloc_failed:
    a->out_status[m] = -1;
    a->out_n_blocks[m] = 0;

cleanup:
    free(present_u);
    free(present_m);
    free(remap_u);
    free(remap_m);
    free(mu);
    free(mm);
    free(mw);
    free(indptr);
    free(fill);
    free(flat_edge);
    free(flat_other);
    free(sub_indptr);
    free(sub_other);
    free(sub_w);
    free(full_w);
    free(ew);
    free(prio);
    free(deg);
    free(deg_frozen);
    free(edge_alive);
    free(removal_order);
    free(keep);
    if (scratch_ok)
        scratch_free(&scratch);
}

int64_t repro_fdet_batch(
    int64_t pn_users,
    int64_t pn_merchants,
    const void *p_eu,
    const void *p_em,
    int64_t idx_width,
    const void *p_w,
    int64_t has_weights,
    int64_t w_width,
    const double *weight_table,
    int64_t n_members,
    const int64_t *edge_ids,
    const int64_t *edge_off,
    const double *scales,
    int64_t max_blocks,
    int64_t min_block_edges,
    double min_density_ratio,
    int64_t frozen_policy,
    int64_t n_threads,
    int64_t *out_status,
    int64_t *out_nu,
    int64_t *out_nm,
    int64_t *kept_users,
    const int64_t *ku_off,
    int64_t *kept_merchants,
    const int64_t *km_off,
    int64_t *out_n_blocks,
    double *block_density,
    int64_t *block_n_edges,
    uint8_t *block_masks,
    const int64_t *mask_off)
{
    batch_args_t args;
    args.pn_users = pn_users;
    args.pn_merchants = pn_merchants;
    args.p_eu = p_eu;
    args.p_em = p_em;
    args.idx_width = idx_width;
    args.p_w = has_weights ? p_w : NULL;
    args.w_width = w_width;
    args.weight_table = weight_table;
    args.edge_ids = edge_ids;
    args.edge_off = edge_off;
    args.scales = scales;
    args.max_blocks = max_blocks;
    args.min_block_edges = min_block_edges;
    args.min_density_ratio = min_density_ratio;
    args.frozen_policy = frozen_policy;
    args.out_status = out_status;
    args.out_nu = out_nu;
    args.out_nm = out_nm;
    args.kept_users = kept_users;
    args.ku_off = ku_off;
    args.kept_merchants = kept_merchants;
    args.km_off = km_off;
    args.out_n_blocks = out_n_blocks;
    args.block_density = block_density;
    args.block_n_edges = block_n_edges;
    args.block_masks = block_masks;
    args.mask_off = mask_off;

#ifdef _OPENMP
    if (n_threads < 1)
        n_threads = 1;
#pragma omp parallel for schedule(dynamic, 1) num_threads((int)n_threads)
    for (int64_t m = 0; m < n_members; m++)
        run_member(&args, m);
#else
    (void)n_threads;
    for (int64_t m = 0; m < n_members; m++)
        run_member(&args, m);
#endif
    return 0;
}

/* votes[indices[i]] += 1 — the vote-merge accumulator. */
int64_t repro_accumulate_votes(const int64_t *indices, int64_t n, int64_t *votes)
{
    for (int64_t i = 0; i < n; i++)
        votes[indices[i]]++;
    return 0;
}

/* 1 when this build runs members OpenMP-parallel, 0 for the serial build. */
int64_t repro_has_openmp(void)
{
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}
