"""Truncating-point rules for choosing ``k̂`` (paper Definition 3).

FDET keeps extracting blocks of decreasing density; the question is where to
stop counting blocks as meaningful. The paper adapts the elbow rule from
k-means: treat the per-block density series ``φ(G(S_1)), φ(G(S_2)), …`` as a
function of the block index and put the cut at

.. math::

    k̂ = \\arg\\min_i Δ²φ(G(S_i))

— the block with the most negative second-order finite difference, i.e. the
last block before the density series falls off its cliff.

Alternative rules (largest single drop, fixed ``k``) are provided for the
Fig.-6 ablation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..errors import DetectionError

__all__ = [
    "TruncationRule",
    "SecondDifferenceRule",
    "FirstDifferenceRule",
    "FixedKRule",
    "second_differences",
]


def second_differences(values: Sequence[float]) -> np.ndarray:
    """Central second differences ``Δ²φ(i) = φ(i+1) − 2φ(i) + φ(i−1)``.

    Returned array has length ``len(values) − 2`` (interior points only);
    entry ``j`` corresponds to block index ``j + 1`` (0-based).
    """
    series = np.asarray(values, dtype=np.float64)
    if series.size < 3:
        return np.zeros(0, dtype=np.float64)
    return series[2:] - 2.0 * series[1:-1] + series[:-2]


class TruncationRule(ABC):
    """Strategy deciding how many leading blocks to keep."""

    name: str = "truncation"

    @abstractmethod
    def truncate(self, densities: Sequence[float]) -> int:
        """Return ``k̂ ≥ 1`` — the number of blocks to keep.

        ``densities`` is the per-block density series, one entry per
        extracted block, in extraction order. Implementations must return a
        value within ``[1, len(densities)]`` (or ``0`` for an empty series).
        """


class SecondDifferenceRule(TruncationRule):
    """The paper's rule: cut at ``argmin_i Δ²φ(G(S_i))``.

    With 0-based block indices the argmin over interior points ``i`` maps to
    keeping blocks ``0..i`` inclusive, i.e. ``k̂ = i + 1`` blocks: the elbow
    block is the last one retained. Series shorter than 3 are kept whole.

    Faithfulness note: because the argmin ranges over *interior* points the
    rule can never return ``k̂ = 1`` — it presumes the paper's regime of a
    plateau of several comparably-dense fraud blocks followed by a cliff
    (Fig. 1). On a convex, cliff-less decay it degenerates toward keeping
    most blocks; that is a property of Definition 3 itself, reproduced
    as-published.
    """

    name = "second_difference"

    def truncate(self, densities: Sequence[float]) -> int:
        n = len(densities)
        if n == 0:
            return 0
        deltas = second_differences(densities)
        if deltas.size == 0:
            return n
        interior = int(np.argmin(deltas))  # 0-based offset into interior points
        return interior + 2  # interior j ↦ block index j+1 ↦ keep j+2 blocks


class FirstDifferenceRule(TruncationRule):
    """Cut before the largest single drop: ``k̂ = argmin_i Δφ(i)``.

    Simpler alternative used in the truncation ablation; keeps every block up
    to and including the one after which density falls the most.
    """

    name = "first_difference"

    def truncate(self, densities: Sequence[float]) -> int:
        n = len(densities)
        if n == 0:
            return 0
        if n == 1:
            return 1
        series = np.asarray(densities, dtype=np.float64)
        drops = series[1:] - series[:-1]
        return int(np.argmin(drops)) + 1


class FixedKRule(TruncationRule):
    """Keep a fixed number of blocks (the ENSEMFDET-FIX-K baseline)."""

    name = "fixed_k"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise DetectionError(f"fixed k must be >= 1, got {k}")
        self.k = int(k)

    def truncate(self, densities: Sequence[float]) -> int:
        return min(self.k, len(densities))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedKRule(k={self.k})"
