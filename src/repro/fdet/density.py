"""Density metrics for dense-block detection (paper Definition 2).

The paper scores a subgraph ``S`` with the Fraudar-style log-weighted
density

.. math::

    φ(S) = \\frac{1}{|S|} \\sum_{(i,j) ∈ E(S)} \\frac{1}{\\log(d_j + c)}

where ``d_j`` is the degree of the *merchant* endpoint and ``c > 1`` keeps
the logarithm positive. Penalising edges into globally busy merchants makes
camouflage (fraudsters also buying from popular shops) ineffective, per
Hooi et al.'s Fraudar analysis.

A metric decomposes into

* per-edge weights ``w_e`` (possibly derived from merchant degrees), and
* optional per-node prior weights (Fraudar's side information hook),

so that ``density(S) = (Σ_{nodes} a + Σ_{edges} w) / |S|``. The greedy
peeling engine only ever consumes this decomposition.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..errors import DetectionError
from ..graph import BipartiteGraph

__all__ = [
    "DensityMetric",
    "LogWeightedDensity",
    "AverageDegreeDensity",
    "PAPER_DENSITY",
]


class DensityMetric(ABC):
    """Decomposable density score over bipartite subgraphs."""

    #: short identifier for reports
    name: str = "density"

    @abstractmethod
    def merchant_degree_weights(self, degrees: np.ndarray) -> np.ndarray:
        """Per-merchant multiplier applied to every incident edge."""

    def edge_weights(
        self,
        graph: BipartiteGraph,
        merchant_degrees: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-edge contribution weights for ``graph``.

        ``merchant_degrees`` overrides the degree source — FDET's *frozen*
        weight policy passes the original graph's degrees so that weights do
        not drift as detected blocks are carved out.
        """
        if merchant_degrees is None:
            merchant_degrees = graph.merchant_degrees()
        elif merchant_degrees.shape[0] != graph.n_merchants:
            raise DetectionError(
                "merchant_degrees length does not match the graph's merchant count"
            )
        multipliers = self.merchant_degree_weights(np.asarray(merchant_degrees))
        return multipliers[graph.edge_merchants] * graph.weights_or_ones()

    def user_weights(self, graph: BipartiteGraph) -> np.ndarray | None:
        """Optional per-user prior suspiciousness (default: none)."""
        return None

    def merchant_weights(self, graph: BipartiteGraph) -> np.ndarray | None:
        """Optional per-merchant prior suspiciousness (default: none)."""
        return None

    def density(
        self,
        graph: BipartiteGraph,
        merchant_degrees: np.ndarray | None = None,
    ) -> float:
        """``φ`` of the whole graph: total weight over total node count."""
        if graph.n_nodes == 0:
            return 0.0
        total = float(self.edge_weights(graph, merchant_degrees).sum())
        for weights in (self.user_weights(graph), self.merchant_weights(graph)):
            if weights is not None:
                total += float(weights.sum())
        return total / graph.n_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class LogWeightedDensity(DensityMetric):
    """The paper's ``φ``: edge weight ``1/log(d_j + c)`` (Definition 2).

    Parameters
    ----------
    c:
        The constant added inside the logarithm. Must exceed ``1`` so the
        weight stays positive for degree-0 merchants; the Fraudar reference
        implementation uses ``5``, which we adopt as the default.
    """

    name = "log_weighted"

    def __init__(self, c: float = 5.0) -> None:
        if c <= 1.0:
            raise DetectionError(f"c must be > 1 so log(d + c) > 0; got {c}")
        self.c = float(c)

    def merchant_degree_weights(self, degrees: np.ndarray) -> np.ndarray:
        return 1.0 / np.log(degrees.astype(np.float64) + self.c)

    def __repr__(self) -> str:  # pragma: no cover
        return f"LogWeightedDensity(c={self.c})"


class AverageDegreeDensity(DensityMetric):
    """Charikar's average-degree objective: every edge weighs ``1``.

    ``density(S) = |E(S)| / |S|`` — half the average degree. Kept as the
    classic baseline objective and for ablations against ``φ``.
    """

    name = "average_degree"

    def merchant_degree_weights(self, degrees: np.ndarray) -> np.ndarray:
        return np.ones(degrees.shape[0], dtype=np.float64)


class PriorWeightedDensity(LogWeightedDensity):
    """Log-weighted density plus per-node prior suspiciousness.

    Hooi et al.'s full Fraudar objective carries an ``a_i`` term for side
    information (rule-engine scores, device fingerprints, account age...).
    This metric injects such priors: ``density(S) = (Σ_{i∈S} a_i +
    Σ_{(i,j)∈E(S)} 1/log(d_j + c)) / |S|``. Priors are looked up by the
    graph's node *labels*, so they survive sampling and FDET's internal
    subgraphing.

    Parameters
    ----------
    user_priors, merchant_priors:
        ``label -> non-negative prior`` mappings; missing labels get 0.
    c:
        The log-weight constant (see :class:`LogWeightedDensity`).
    """

    name = "prior_weighted"

    def __init__(
        self,
        user_priors: dict[int, float] | None = None,
        merchant_priors: dict[int, float] | None = None,
        c: float = 5.0,
    ) -> None:
        super().__init__(c=c)
        for priors, side in ((user_priors, "user"), (merchant_priors, "merchant")):
            if priors and any(value < 0 for value in priors.values()):
                raise DetectionError(f"{side} priors must be non-negative")
        self._user_priors = dict(user_priors or {})
        self._merchant_priors = dict(merchant_priors or {})

    def _lookup(self, labels: np.ndarray, priors: dict[int, float]) -> np.ndarray | None:
        if not priors:
            return None
        return np.array([priors.get(int(label), 0.0) for label in labels], dtype=np.float64)

    def user_weights(self, graph: BipartiteGraph) -> np.ndarray | None:
        return self._lookup(graph.user_labels, self._user_priors)

    def merchant_weights(self, graph: BipartiteGraph) -> np.ndarray | None:
        return self._lookup(graph.merchant_labels, self._merchant_priors)


def PAPER_DENSITY() -> LogWeightedDensity:
    """Fresh instance of the paper's default metric (``c = 5``)."""
    return LogWeightedDensity(c=5.0)


def log_weight(degree: float, c: float = 5.0) -> float:
    """Scalar convenience: ``1 / log(degree + c)``."""
    return 1.0 / math.log(degree + c)
