"""Batched multi-member FDET: many sampled members, one native kernel call.

The ensemble's hot loop used to materialize every member as a fresh
:class:`~repro.graph.BipartiteGraph` (node compaction, adjacency sort,
weight gather) and then run FDET block by block through per-peel kernel
calls. This module drives the ``repro_fdet_batch`` entry point of
``_peel_kernel.c`` instead: the parent's edge arrays are shared read-only,
each member is described only by its parent edge-id list (derived straight
from the :class:`~repro.sampling.SamplePlan`, windowed liveness AND-ed in),
and the kernel performs compaction, CSR construction, the full block loop
and the peels for **all members in one call** — OpenMP-parallel across
members when available.

Python keeps the thin, cold edges of the pipeline: eligibility gating,
plan→edge-id expansion, marshalling, truncation, :class:`Block` /
:class:`FdetResult` assembly, and the native vote-merge helpers. Everything
the kernel computes is **bitwise identical** to the reference pipeline
(``materialize_plan`` + ``Fdet.detect``) — enforced by
``tests/fdet/test_batched_parity.py`` across sampler families, window
modes and execution backends.

Gating is conservative: the batch path only engages for the stock density
metrics (:class:`LogWeightedDensity` / :class:`AverageDegreeDensity`
implementations, no prior hooks), the ``fast`` engine, and edge-index or
stripe-row plans. Anything else — node-kind plans, custom metrics, the
reference engine — falls back to the per-member path, member by member.
A load-time probe additionally verifies that the kernel's pairwise
summation reproduces ``np.sum`` bit for bit on this host and disables the
batch path when it does not.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..graph import BipartiteGraph
from ..graph.window import EdgeWindow
from ..sampling import SamplePlan
from . import peeling_fast
from ._native import NativeKernels, load_kernels
from .density import AverageDegreeDensity, DensityMetric, LogWeightedDensity
from .fdet import Block, FdetConfig, FdetResult, WeightPolicy
from .peeling import PeelEngine

__all__ = [
    "NativeDetection",
    "batch_kernels",
    "config_eligible",
    "detect_many",
    "plan_eligible",
    "plan_edge_ids",
    "resolve_native_batch",
    "vote_counters",
]

#: metric implementations the kernel replicates; a subclass overriding any of
#: these (or the prior hooks) peels positions-dependently for all we know and
#: must take the per-member Python path
_DEGREE_WEIGHT_IMPLS = (
    LogWeightedDensity.merchant_degree_weights,
    AverageDegreeDensity.merchant_degree_weights,
)

_DUMMY_F64 = np.zeros(1, dtype=np.float64)

#: None = probe not yet run, else its verdict (per process)
_probe_verdict: bool | None = None


def resolve_native_batch(value: bool | None) -> bool:
    """Effective batch switch: explicit value, else ``REPRO_NATIVE_BATCH``."""
    if value is not None:
        return bool(value)
    raw = os.environ.get("REPRO_NATIVE_BATCH", "1").strip().lower()
    return raw not in ("0", "false", "no", "off")


def _probe(kernels: NativeKernels) -> bool:
    """Does the kernel's pairwise sum match ``np.sum`` bitwise on this host?

    The batch path reproduces ``edge_weights.sum()`` in C; numpy's pairwise
    blocking is an implementation detail, so on an exotic build the replica
    could drift by an ulp. One cheap deterministic check at first use keeps
    the bitwise guarantee honest — any mismatch disables batching entirely.
    """
    rng = np.random.default_rng(20260808)
    for size in (0, 1, 7, 8, 127, 128, 129, 1000, 4097, 12345):
        values = np.ascontiguousarray(rng.random(size))
        if kernels.pairwise_sum(values, size) != float(np.sum(values)):
            return False
    return True


def batch_kernels() -> NativeKernels | None:
    """The kernel handle iff the batch path may be used on this host."""
    if peeling_fast._force_python:  # test hook: behave like no-native hosts
        return None
    kernels = load_kernels()
    if kernels is None:
        return None
    global _probe_verdict
    if _probe_verdict is None:
        _probe_verdict = _probe(kernels)
    return kernels if _probe_verdict else None


def config_eligible(config: FdetConfig) -> bool:
    """Can this FDET configuration run through the batched kernel?"""
    metric_cls = type(config.metric)
    return (
        config.engine == PeelEngine.FAST
        and metric_cls.edge_weights is DensityMetric.edge_weights
        and metric_cls.user_weights is DensityMetric.user_weights
        and metric_cls.merchant_weights is DensityMetric.merchant_weights
        and any(metric_cls.merchant_degree_weights is impl for impl in _DEGREE_WEIGHT_IMPLS)
    )


def plan_eligible(plan: SamplePlan) -> bool:
    """Edge-index and stripe-row plans reduce to parent edge-id lists."""
    return plan.kind in ("edges", "stripes")


def plan_edge_ids(
    plan: SamplePlan, n_edges: int, window: EdgeWindow | None = None
) -> np.ndarray:
    """The parent edge ids ``plan`` keeps — no subgraph construction.

    Mirrors :func:`repro.sampling.materialize_plan` exactly: windowed
    stripe lookup by append id with the liveness overlay AND-ed in,
    positional stripe expansion otherwise, and the raw index list for
    edge-kind plans. Order matters — edge-kind ids stay in plan (chosen)
    order, mask-derived ids come out ascending — because the member's
    edge order defines its adjacency and peel tie-breaking.
    """
    if window is not None:
        ids = window.edge_ids if plan.stripe == 1 else window.edge_ids // plan.stripe
        mask = plan.stripe_row[ids] & window.alive
        return np.nonzero(mask)[0]
    if plan.kind == "edges":
        return np.ascontiguousarray(plan.edge_indices, dtype=np.int64)
    if plan.kind == "stripes":
        row = plan.stripe_row
        mask = row[:n_edges] if plan.stripe == 1 else np.repeat(row, plan.stripe)[:n_edges]
        return np.nonzero(mask)[0]
    raise ValueError(f"plan kind {plan.kind!r} has no native edge-id path")


def _weight_table(metric: DensityMetric, graph: BipartiteGraph) -> np.ndarray:
    """``degree -> edge multiplier`` lookup covering every possible degree.

    A member's merchant degrees never exceed the parent's (member edges are
    a subset), so a table over ``0..max_parent_degree`` covers every value
    the kernel can look up. ``np.log`` is elementwise position-independent,
    making ``table[d]`` bitwise equal to evaluating the metric on the
    member's own degree array.
    """
    degrees = graph.merchant_degrees()
    max_degree = int(degrees.max()) if degrees.size else 0
    table = metric.merchant_degree_weights(np.arange(max_degree + 1, dtype=np.int64))
    return np.ascontiguousarray(table, dtype=np.float64)


@dataclass(frozen=True)
class NativeDetection:
    """One member's batched output, before runner-level wrapping.

    ``user_labels`` / ``merchant_labels`` are the member subgraph's node
    labels (parent labels gathered over the member's compacted node set);
    the ``detected_*_indices`` arrays are sorted unique **parent node
    indices** over the truncated blocks, feeding the native vote merge.
    """

    result: FdetResult
    user_labels: np.ndarray
    merchant_labels: np.ndarray
    detected_user_indices: np.ndarray
    detected_merchant_indices: np.ndarray


def detect_many(
    graph: BipartiteGraph,
    plans: Sequence[SamplePlan],
    config: FdetConfig,
    window: EdgeWindow | None = None,
    n_threads: int = 1,
) -> list[NativeDetection | None] | None:
    """Run FDET for every plan in one kernel call.

    Returns ``None`` when the batch path is unavailable; otherwise one
    :class:`NativeDetection` per plan, with ``None`` in a slot whose
    member hit an in-kernel allocation failure (the caller re-runs just
    that member through the per-member path). The caller is responsible
    for eligibility (:func:`config_eligible` / :func:`plan_eligible`) and
    for fault points.
    """
    kernels = batch_kernels()
    if kernels is None or not plans:
        return None

    n_members = len(plans)
    max_blocks = config.max_blocks
    # compact (int32/float32) parent columns — including read-only mmap
    # views — cross the ABI in their storage dtype; the kernel widens each
    # load, so no resident int64/float64 copy of the parent is ever built
    if graph.edge_users.dtype == graph.edge_merchants.dtype and graph.edge_users.dtype in (
        np.dtype(np.int32),
        np.dtype(np.int64),
    ):
        p_eu = np.ascontiguousarray(graph.edge_users)
        p_em = np.ascontiguousarray(graph.edge_merchants)
    else:
        p_eu = np.ascontiguousarray(graph.edge_users, dtype=np.int64)
        p_em = np.ascontiguousarray(graph.edge_merchants, dtype=np.int64)
    idx_width = p_eu.dtype.itemsize
    has_weights = graph.edge_weights is not None
    if has_weights:
        if graph.edge_weights.dtype in (np.dtype(np.float32), np.dtype(np.float64)):
            p_w = np.ascontiguousarray(graph.edge_weights)
        else:
            p_w = np.ascontiguousarray(graph.edge_weights, dtype=np.float64)
    else:
        p_w = _DUMMY_F64
    w_width = p_w.dtype.itemsize
    weight_table = _weight_table(config.metric, graph)

    ids_list = [plan_edge_ids(plan, graph.n_edges, window) for plan in plans]
    counts = np.array([ids.size for ids in ids_list], dtype=np.int64)
    edge_off = np.zeros(n_members + 1, dtype=np.int64)
    np.cumsum(counts, out=edge_off[1:])
    edge_ids = (
        np.ascontiguousarray(np.concatenate(ids_list), dtype=np.int64)
        if int(edge_off[-1])
        else np.empty(0, dtype=np.int64)
    )
    scales = np.array(
        [1.0 if plan.weight_scale is None else float(plan.weight_scale) for plan in plans],
        dtype=np.float64,
    )

    # output slabs, sized by per-member upper bounds (a member touches at
    # most min(|edges|, parent side size) nodes per side)
    nu_bounds = np.minimum(counts, graph.n_users)
    nm_bounds = np.minimum(counts, graph.n_merchants)
    ku_off = np.zeros(n_members + 1, dtype=np.int64)
    np.cumsum(nu_bounds, out=ku_off[1:])
    km_off = np.zeros(n_members + 1, dtype=np.int64)
    np.cumsum(nm_bounds, out=km_off[1:])
    row_bounds = (nu_bounds + nm_bounds + 7) // 8
    mask_off = np.zeros(n_members + 1, dtype=np.int64)
    np.cumsum(max_blocks * row_bounds, out=mask_off[1:])

    out_status = np.zeros(n_members, dtype=np.int64)
    out_nu = np.zeros(n_members, dtype=np.int64)
    out_nm = np.zeros(n_members, dtype=np.int64)
    out_n_blocks = np.zeros(n_members, dtype=np.int64)
    kept_users = np.zeros(max(1, int(ku_off[-1])), dtype=np.int64)
    kept_merchants = np.zeros(max(1, int(km_off[-1])), dtype=np.int64)
    block_density = np.zeros(n_members * max_blocks, dtype=np.float64)
    block_n_edges = np.zeros(n_members * max_blocks, dtype=np.int64)
    block_masks = np.zeros(max(1, int(mask_off[-1])), dtype=np.uint8)

    kernels.fdet_batch(
        graph.n_users,
        graph.n_merchants,
        p_eu,
        p_em,
        idx_width,
        p_w,
        int(has_weights),
        w_width,
        weight_table,
        n_members,
        edge_ids,
        edge_off,
        scales,
        max_blocks,
        config.min_block_edges,
        float(config.min_density_ratio),
        int(config.weight_policy == WeightPolicy.FROZEN),
        int(n_threads),
        out_status,
        out_nu,
        out_nm,
        kept_users,
        ku_off,
        kept_merchants,
        km_off,
        out_n_blocks,
        block_density,
        block_n_edges,
        block_masks,
        mask_off,
    )

    user_labels_all = graph.user_labels
    merchant_labels_all = graph.merchant_labels
    out: list[NativeDetection | None] = []
    for m in range(n_members):
        if out_status[m] != 0:
            out.append(None)  # in-kernel allocation failure: member falls back
            continue
        nu = int(out_nu[m])
        nm = int(out_nm[m])
        n = nu + nm
        ku = kept_users[int(ku_off[m]) : int(ku_off[m]) + nu]
        km = kept_merchants[int(km_off[m]) : int(km_off[m]) + nm]
        member_user_labels = user_labels_all[ku]
        member_merchant_labels = merchant_labels_all[km]
        n_blocks = int(out_n_blocks[m])

        blocks: list[Block] = []
        bits = None
        if n_blocks:
            row_bytes = (n + 7) // 8
            base = int(mask_off[m])
            rows = block_masks[base : base + n_blocks * row_bytes]
            bits = np.unpackbits(
                rows.reshape(n_blocks, row_bytes), axis=1, bitorder="little"
            )[:, :n].astype(bool)
            for b in range(n_blocks):
                row = bits[b]
                blocks.append(
                    Block(
                        index=b,
                        user_labels=np.sort(member_user_labels[row[:nu]]),
                        merchant_labels=np.sort(member_merchant_labels[row[nu:]]),
                        density=float(block_density[m * max_blocks + b]),
                        n_edges=int(block_n_edges[m * max_blocks + b]),
                    )
                )
        k_hat = config.truncation.truncate([block.density for block in blocks])
        result = FdetResult(all_blocks=tuple(blocks), k_hat=k_hat)

        if k_hat > 0:
            union = bits[:k_hat].any(axis=0)
            detected_users = np.ascontiguousarray(ku[union[:nu]])
            detected_merchants = np.ascontiguousarray(km[union[nu:]])
        else:
            detected_users = np.empty(0, dtype=np.int64)
            detected_merchants = np.empty(0, dtype=np.int64)
        out.append(
            NativeDetection(
                result=result,
                user_labels=member_user_labels,
                merchant_labels=member_merchant_labels,
                detected_user_indices=detected_users,
                detected_merchant_indices=detected_merchants,
            )
        )
    return out


def vote_counters(
    detections: Sequence[object], graph: BipartiteGraph
) -> tuple[Counter, Counter] | None:
    """Native vote merge: per-member detected-index arrays → vote counters.

    Equal (as :class:`collections.Counter`) to tallying
    ``result.detected_users()`` labels member by member, provided every
    detection carries index arrays and the parent's labels are unique
    (otherwise two distinct node indices could collapse onto one label and
    index-space counting would double-count it). Returns ``None`` whenever
    those preconditions — or the kernel itself — are unavailable.
    """
    kernels = batch_kernels()
    if kernels is None or not detections:
        return None
    if any(
        getattr(d, "detected_user_indices", None) is None
        or getattr(d, "detected_merchant_indices", None) is None
        for d in detections
    ):
        return None
    user_labels = graph.user_labels
    merchant_labels = graph.merchant_labels
    if (
        np.unique(user_labels).size != user_labels.size
        or np.unique(merchant_labels).size != merchant_labels.size
    ):
        return None

    def tally(index_arrays: Iterable[np.ndarray], labels: np.ndarray) -> Counter:
        votes = np.zeros(max(1, labels.size), dtype=np.int64)
        indices = np.ascontiguousarray(np.concatenate(list(index_arrays)), dtype=np.int64)
        if indices.size:
            kernels.accumulate_votes(indices, indices.size, votes)
        hit = np.nonzero(votes[: labels.size])[0]
        return Counter(dict(zip(labels[hit].tolist(), votes[hit].tolist())))

    return (
        tally((d.detected_user_indices for d in detections), user_labels),
        tally((d.detected_merchant_indices for d in detections), merchant_labels),
    )
