"""The ``fast`` peeling engine — flat-array backend with a native core.

Same contract as the reference engine in :mod:`repro.fdet.peeling`, same
results bit for bit, different execution strategy:

* All per-edge preparation is vectorised numpy: the priority array is built
  with ``np.add.at``, and the graph is flattened into a combined CSR
  adjacency over the joint node index space (users then merchants) that can
  be **masked and reused across FDET blocks** without re-sorting.
* The sequential extract-min loop runs in a compiled C kernel
  (``_peel_kernel.c``, loaded through ctypes — see :mod:`._native`) when a
  system C compiler is available, and otherwise in an optimised pure-Python
  core (argsorted clean stream + lazy hot heap).

Both cores replicate the reference engine's lazy-heap semantics exactly —
lexicographic ``(priority, node)`` ordering, the ``1e-12`` stale-entry
tolerance, and identical float64 operation order — so ``PeelResult``s are
bitwise identical to :func:`repro.fdet.peeling.greedy_peel` with
``engine="reference"``. The parity suite in
``tests/fdet/test_engine_parity.py`` enforces this.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph import BipartiteGraph
from ._native import load_peel_kernel

__all__ = ["PeelContext", "fast_peel"]

#: test hook — set to True to bypass the native kernel
_force_python = False


class PeelContext:
    """Reusable flattened adjacency of one graph.

    Builds, once, a combined CSR over the joint node index space (user ``u``
    is node ``u``; merchant ``m`` is node ``n_users + m``): the half-edges of
    node ``v`` are ``flat_other[indptr[v]:indptr[v+1]]`` (opposite endpoint)
    with originating edge ids ``flat_edge[...]``. FDET's no-rebuild loop
    keeps one context for the input graph and re-peels arbitrary edge
    subsets through :meth:`subset` — an O(|E|) masked gather instead of the
    O(|E| log |E|) adjacency re-sort a fresh graph would pay.
    """

    def __init__(self, graph: BipartiteGraph) -> None:
        n_users = graph.n_users
        user_indptr, user_edges = graph.user_adjacency()
        merchant_indptr, merchant_edges = graph.merchant_adjacency()
        self.n_users = n_users
        self.n_nodes = n_users + graph.n_merchants
        self.n_edges = graph.n_edges
        self.indptr = np.ascontiguousarray(
            np.concatenate([user_indptr, user_indptr[-1] + merchant_indptr[1:]]),
            dtype=np.int64,
        )
        self.flat_edge = np.ascontiguousarray(
            np.concatenate([user_edges, merchant_edges]), dtype=np.int64
        )
        self.flat_other = np.ascontiguousarray(
            np.concatenate(
                [n_users + graph.edge_merchants[user_edges], graph.edge_users[merchant_edges]]
            ),
            dtype=np.int64,
        )
        # owner of each half-edge, for rebuilding indptr after masking
        self._flat_owner = np.repeat(
            np.arange(self.n_nodes, dtype=np.int64), np.diff(self.indptr)
        )

    def subset(self, edge_alive: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, flat_other, flat_edge)`` restricted to alive edges.

        Half-edge order within each node's span is preserved, which keeps
        the masked peel bitwise identical to peeling a freshly compacted
        graph (whose stable argsort yields the same relative order).

        When the mask keeps every edge (common for high sampling ratios and
        for FDET's first block) the context's own arrays are returned as
        trusted read-only views — no gather, no copy. Callers must treat
        the returned arrays as immutable either way.
        """
        if edge_alive.all():
            return self.indptr, self.flat_other, self.flat_edge
        keep = edge_alive[self.flat_edge]
        counts = np.bincount(self._flat_owner[keep], minlength=self.n_nodes)
        indptr = np.zeros(self.n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return (
            indptr,
            np.ascontiguousarray(self.flat_other[keep]),
            np.ascontiguousarray(self.flat_edge[keep]),
        )


def fast_peel(
    graph: BipartiteGraph,
    edge_weights: np.ndarray,
    priors: np.ndarray,
    context: PeelContext | None = None,
    edge_alive: np.ndarray | None = None,
):
    """Peel ``graph`` with the fast engine and return its densest prefix.

    Parameters
    ----------
    graph:
        The graph to peel. With ``context``/``edge_alive`` this is the
        *residual* graph (full node set, alive edges only) whose compacted
        edge arrays seed the priorities.
    edge_weights:
        One weight per edge of ``graph`` (compacted, when masked).
    priors:
        Dense per-node prior array over the combined index space.
    context:
        Flattened adjacency of the **original** graph, reused across FDET
        blocks. ``None`` builds a throwaway context from ``graph``.
    edge_alive:
        Boolean mask over the context's edges selecting the residual edge
        set; requires ``context``. ``None`` peels every context edge.
    """
    from .peeling import PeelResult, _empty_result  # local import to avoid a module cycle

    n_users = graph.n_users
    n = n_users + graph.n_merchants
    if n == 0:
        return _empty_result()

    priority = priors.copy()
    np.add.at(priority, graph.edge_users, edge_weights)
    np.add.at(priority, n_users + graph.edge_merchants, edge_weights)
    total = float(priors.sum() + edge_weights.sum())

    if context is None:
        context = PeelContext(graph)
    if edge_alive is None:
        indptr = context.indptr
        flat_other = context.flat_other
        flat_w = edge_weights[context.flat_edge]
    else:
        indptr, flat_other, flat_edge = context.subset(edge_alive)
        full_weights = np.zeros(context.n_edges, dtype=np.float64)
        full_weights[edge_alive] = edge_weights
        flat_w = full_weights[flat_edge]

    removal_order, densities, best_density, best_removed = _peel_core(
        n, indptr, flat_other, np.ascontiguousarray(flat_w, dtype=np.float64), priority, total
    )

    keep = np.ones(n, dtype=bool)
    keep[removal_order[:best_removed]] = False
    return PeelResult(
        user_mask=keep[:n_users],
        merchant_mask=keep[n_users:],
        density=float(best_density),
        n_removed=int(best_removed),
        densities=densities,
    )


def _peel_core(n, indptr, flat_other, flat_w, priority, total):
    """Dispatch to the native kernel, falling back to the Python core."""
    kernel = None if _force_python else load_peel_kernel()
    if kernel is not None:
        result = _native_core(kernel, n, indptr, flat_other, flat_w, priority, total)
        if result is not None:
            return result
    return _python_core(n, indptr, flat_other, flat_w, priority, total)


def _native_core(kernel, n, indptr, flat_other, flat_w, priority, total):
    import ctypes

    removal_order = np.empty(n, dtype=np.int64)
    densities = np.empty(max(n, 1), dtype=np.float64)
    best_density = ctypes.c_double()
    best_removed = ctypes.c_int64()
    removed = kernel(
        n,
        indptr,
        flat_other,
        flat_w,
        priority,
        total,
        removal_order,
        densities,
        ctypes.byref(best_density),
        ctypes.byref(best_removed),
    )
    if removed < 0:  # allocation failure inside the kernel
        return None
    return (
        removal_order[:removed],
        densities[: removed + 1].copy(),
        best_density.value,
        int(best_removed.value),
    )


def _python_core(n, indptr, flat_other, flat_w, priority, total):
    """Pure-Python core: argsorted clean stream + lazy hot heap.

    The reference engine's heap initially holds one entry per node; here
    those initial entries live in a pre-sorted "clean" stream consumed by a
    moving pointer, and only re-prioritised nodes enter a (much smaller)
    binary heap. The union of live entries — and therefore the accepted pop
    sequence under the shared lazy rule — is identical to the reference's.
    """
    order = np.argsort(priority, kind="stable")  # ties resolve to smaller node id
    clean_values = priority[order].tolist()
    clean_nodes = order.tolist()
    prio = priority.tolist()
    indptr_list = indptr.tolist()
    other_list = flat_other.tolist()
    weight_list = flat_w.tolist()

    alive = bytearray(b"\x01" * n)
    hot: list[tuple[float, int]] = []
    push, pop = heapq.heappush, heapq.heappop
    removal_order: list[int] = []
    densities = [total / n]
    best_density = densities[0]
    best_removed = 0
    n_alive = n
    clean_pos = 0

    while n_alive > 1:
        if clean_pos < n:
            candidate = clean_nodes[clean_pos]
            candidate_value = clean_values[clean_pos]
        else:
            candidate = -1
            candidate_value = 0.0
        if hot and (candidate < 0 or hot[0] < (candidate_value, candidate)):
            value, node = pop(hot)
            if not alive[node] or value > prio[node] + 1e-12:
                continue  # stale hot entry
        elif candidate >= 0:
            clean_pos += 1
            node = candidate
            if not alive[node] or candidate_value > prio[node] + 1e-12:
                continue  # node already popped or re-prioritised since sort
        else:  # pragma: no cover - every alive node always has an entry
            break

        alive[node] = 0
        removal_order.append(node)
        n_alive -= 1
        total -= prio[node]
        for index in range(indptr_list[node], indptr_list[node + 1]):
            other = other_list[index]
            if alive[other]:
                updated = prio[other] - weight_list[index]
                prio[other] = updated
                push(hot, (updated, other))
        density = total / n_alive
        densities.append(density)
        if density > best_density:
            best_density = density
            best_removed = len(removal_order)

    return (
        np.array(removal_order, dtype=np.int64),
        np.array(densities, dtype=np.float64),
        best_density,
        best_removed,
    )
