"""FDET — k-disjoint dense-block extraction (paper Algorithm 1).

The natural heuristic for the disjoint objective of Equ. 1: repeatedly

1. peel the current graph greedily and take the densest prefix (a block),
2. record the block's node labels and density,
3. remove the block's *edges* (nodes stay, so later blocks may reuse nodes
   that still have edges elsewhere — the returned blocks are edge-disjoint,
   and the density objective sums over them),

until the graph runs out of edges or ``max_blocks`` is reached, then apply a
truncating-point rule (Definition 3) to keep only the ``k̂`` meaningful
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DetectionError, EmptyGraphError
from ..graph import BipartiteGraph
from .density import DensityMetric, LogWeightedDensity
from .peeling import PeelEngine, _build_priors, _reference_peel, greedy_peel
from .peeling_fast import PeelContext, fast_peel
from .truncation import SecondDifferenceRule, TruncationRule

__all__ = ["Block", "FdetConfig", "FdetResult", "Fdet", "WeightPolicy"]


class WeightPolicy:
    """How the log-weights react to edge removal across FDET iterations.

    * ``REFRESH`` — recompute ``1/log(d_j + c)`` on the residual graph before
      every block (degrees shrink as blocks are carved out).
    * ``FROZEN`` — compute merchant degrees once on the input graph and keep
      the edge weights fixed (Fraudar's global-weights convention).

    The choice is ablated in ``benchmarks/bench_ablation_weights.py``.
    """

    REFRESH = "refresh"
    FROZEN = "frozen"
    ALL = (REFRESH, FROZEN)


def _residual_view(graph: BipartiteGraph, edge_alive: np.ndarray) -> BipartiteGraph:
    """The graph restricted to alive edges (node set and labels kept).

    Uses the trusted constructor: the arrays are masked views of an already
    validated graph, so the O(|E|) validation scan is skipped.
    """
    weights = graph.edge_weights[edge_alive] if graph.edge_weights is not None else None
    return BipartiteGraph._from_trusted(
        n_users=graph.n_users,
        n_merchants=graph.n_merchants,
        edge_users=graph.edge_users[edge_alive],
        edge_merchants=graph.edge_merchants[edge_alive],
        edge_weights=weights,
        user_labels=graph.user_labels,
        merchant_labels=graph.merchant_labels,
    )


@dataclass(frozen=True)
class Block:
    """One detected dense block ``G(S_i)``."""

    index: int
    user_labels: np.ndarray
    merchant_labels: np.ndarray
    density: float
    n_edges: int

    @property
    def n_users(self) -> int:
        """Users in the block."""
        return int(self.user_labels.size)

    @property
    def n_merchants(self) -> int:
        """Merchants in the block."""
        return int(self.merchant_labels.size)

    @property
    def n_nodes(self) -> int:
        """Total block size ``|S_i|``."""
        return self.n_users + self.n_merchants


@dataclass(frozen=True)
class FdetConfig:
    """Configuration of the FDET detector.

    Attributes
    ----------
    metric:
        Density metric; defaults to the paper's ``φ`` (log-weighted, c=5).
    max_blocks:
        Upper bound on blocks extracted before truncation. The paper
        observes ``k̂`` in the "few to few tens" range; 30 (the Fraudar
        fixed-K used in Table III) is a safe ceiling.
    truncation:
        Truncating-point rule (Definition 3 by default).
    weight_policy:
        See :class:`WeightPolicy`.
    min_block_edges:
        Extraction stops when the best block has fewer edges than this.
    min_density_ratio:
        Early-stop: halt once a block's density falls below this fraction of
        the first block's density (0 disables; truncation normally discards
        such blocks anyway — this merely saves work).
    engine:
        Peeling backend, one of :class:`repro.fdet.PeelEngine`
        (``"reference"`` or ``"fast"``; default ``"fast"``). Both produce
        identical detections; ``fast`` additionally lets ``detect`` reuse
        one flattened adjacency across all blocks instead of re-sorting.
    """

    metric: DensityMetric = field(default_factory=LogWeightedDensity)
    max_blocks: int = 30
    truncation: TruncationRule = field(default_factory=SecondDifferenceRule)
    weight_policy: str = WeightPolicy.REFRESH
    min_block_edges: int = 1
    min_density_ratio: float = 0.0
    engine: str = PeelEngine.DEFAULT

    def __post_init__(self) -> None:
        if self.max_blocks < 1:
            raise DetectionError(f"max_blocks must be >= 1, got {self.max_blocks}")
        if self.weight_policy not in WeightPolicy.ALL:
            raise DetectionError(
                f"weight_policy must be one of {WeightPolicy.ALL}, got {self.weight_policy!r}"
            )
        if self.engine not in PeelEngine.ALL:
            raise DetectionError(
                f"engine must be one of {PeelEngine.ALL}, got {self.engine!r}"
            )
        if self.min_block_edges < 1:
            raise DetectionError(f"min_block_edges must be >= 1, got {self.min_block_edges}")
        if not 0.0 <= self.min_density_ratio < 1.0:
            raise DetectionError(
                f"min_density_ratio must be in [0, 1), got {self.min_density_ratio}"
            )


@dataclass(frozen=True)
class FdetResult:
    """Everything FDET found on one graph.

    ``blocks`` holds the ``k̂`` truncated blocks; ``all_blocks`` every block
    extracted before truncation (needed by fixed-k comparisons and the Fig.-1
    score plot).
    """

    all_blocks: tuple[Block, ...]
    k_hat: int

    @property
    def blocks(self) -> tuple[Block, ...]:
        """The ``k̂`` blocks retained by the truncating point."""
        return self.all_blocks[: self.k_hat]

    @property
    def densities(self) -> np.ndarray:
        """Density of every extracted block, in extraction order."""
        return np.array([b.density for b in self.all_blocks], dtype=np.float64)

    def detected_users(self, k: int | None = None) -> np.ndarray:
        """Union of user labels over the first ``k`` blocks (default ``k̂``)."""
        return self._union("user_labels", k)

    def detected_merchants(self, k: int | None = None) -> np.ndarray:
        """Union of merchant labels over the first ``k`` blocks (default ``k̂``)."""
        return self._union("merchant_labels", k)

    def _union(self, attribute: str, k: int | None) -> np.ndarray:
        limit = self.k_hat if k is None else min(k, len(self.all_blocks))
        parts = [getattr(block, attribute) for block in self.all_blocks[:limit]]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def total_density(self, k: int | None = None) -> float:
        """The objective of Equ. 1: ``Σ_i φ(G(S_i))`` over kept blocks."""
        limit = self.k_hat if k is None else min(k, len(self.all_blocks))
        return float(sum(block.density for block in self.all_blocks[:limit]))


class Fdet:
    """The FDET detector (paper Algorithm 1 + Definition 3 truncation).

    >>> from repro.graph import BipartiteGraph
    >>> graph = BipartiteGraph.from_edges([(u, v) for u in range(5) for v in range(5)])
    >>> result = Fdet().detect(graph)
    >>> result.blocks[0].n_users
    5
    """

    def __init__(self, config: FdetConfig | None = None) -> None:
        self.config = config or FdetConfig()

    def detect(self, graph: BipartiteGraph) -> FdetResult:
        """Extract dense blocks from ``graph`` and truncate at ``k̂``.

        The outer loop is *zero-rebuild*: instead of materialising a fresh
        graph (O(|E|) validation plus an O(|E| log |E|) adjacency re-sort)
        after every block, it keeps one edge-alive mask over the input
        graph, recomputes only the degree-dependent weights on the masked
        residual, and — under the ``fast`` engine — re-peels through a
        single flattened adjacency built once for all ``max_blocks``
        iterations. Detections are identical to the rebuild-per-block
        formulation under both weight policies and both engines.

        ``graph`` is accepted as a **trusted view**: detection never
        re-validates and never writes into the graph's arrays, so graphs
        materialized worker-side from a :class:`~repro.graph.GraphStore`
        (whose columns are read-only shared-memory views) run unchanged —
        every derived quantity (priorities, masks, residual views) is
        allocated fresh. Enforced by the shm parity tests.
        """
        config = self.config
        metric = config.metric
        frozen_degrees: np.ndarray | None = None
        if config.weight_policy == WeightPolicy.FROZEN:
            frozen_degrees = graph.merchant_degrees()

        n_edges = graph.n_edges
        edge_users = graph.edge_users
        edge_merchants = graph.edge_merchants
        alive = np.ones(n_edges, dtype=bool)
        n_alive = n_edges
        context: PeelContext | None = None
        if config.engine == PeelEngine.FAST and n_edges:
            context = PeelContext(graph)

        blocks: list[Block] = []
        first_density: float | None = None
        for index in range(config.max_blocks):
            if n_alive == 0:
                break
            residual = graph if n_alive == n_edges else _residual_view(graph, alive)
            edge_weights = metric.edge_weights(residual, frozen_degrees)
            priors = _build_priors(
                graph.n_users,
                graph.n_merchants,
                metric.user_weights(residual),
                metric.merchant_weights(residual),
            )
            if context is not None:
                peel = fast_peel(
                    residual,
                    edge_weights,
                    priors,
                    context=context,
                    edge_alive=None if n_alive == n_edges else alive,
                )
            else:
                peel = _reference_peel(residual, edge_weights, priors)
            block_mask = alive & peel.user_mask[edge_users] & peel.merchant_mask[edge_merchants]
            block_edges = np.nonzero(block_mask)[0]
            if block_edges.size < config.min_block_edges:
                break
            blocks.append(
                Block(
                    index=index,
                    user_labels=np.sort(graph.user_labels[peel.user_mask]),
                    merchant_labels=np.sort(graph.merchant_labels[peel.merchant_mask]),
                    density=peel.density,
                    n_edges=int(block_edges.size),
                )
            )
            if first_density is None:
                first_density = peel.density
            elif (
                config.min_density_ratio > 0.0
                and peel.density < config.min_density_ratio * first_density
            ):
                break
            alive[block_edges] = False
            n_alive -= int(block_edges.size)

        k_hat = config.truncation.truncate([block.density for block in blocks])
        return FdetResult(all_blocks=tuple(blocks), k_hat=k_hat)

    def densest_block(self, graph: BipartiteGraph) -> Block:
        """Just the single densest block (no iteration, no truncation)."""
        if graph.is_empty:
            raise EmptyGraphError("cannot extract a block from an edgeless graph")
        edge_weights = self.config.metric.edge_weights(graph)
        peel = greedy_peel(
            graph,
            edge_weights,
            user_weights=self.config.metric.user_weights(graph),
            merchant_weights=self.config.metric.merchant_weights(graph),
            engine=self.config.engine,
        )
        block_edges = peel.edge_indices(graph)
        return Block(
            index=0,
            user_labels=np.sort(graph.user_labels[peel.user_mask]),
            merchant_labels=np.sort(graph.merchant_labels[peel.merchant_mask]),
            density=peel.density,
            n_edges=int(block_edges.size),
        )
