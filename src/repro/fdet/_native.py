"""On-demand compilation and loading of the C peeling kernels.

The ``fast`` peel engine prefers a small dependency-free C kernel
(``_peel_kernel.c``) driven through :mod:`ctypes`. The kernel has no
Python.h dependency, so any system C compiler can build it; the shared
object is cached in a stable per-user directory keyed by the source hash
(plus any extra compile flags), so compilation happens at most once per
source version per machine — across processes and across runs. When the
cache directory cannot be created, is not trusted, or is unwritable, the
build falls back to a fresh private temp directory (trusted by
construction) so the native path still works, just without cross-process
reuse.

The shared object exports several entry points, loaded together as a
:class:`NativeKernels` handle:

``repro_greedy_peel``
    One peel of one flattened graph (used by :mod:`.peeling_fast`).
``repro_fdet_batch``
    The batched multi-member FDET loop (used by :mod:`.batched`).
``repro_accumulate_votes``
    Vote-merge accumulator for ensemble tallies.
``repro_pairwise_sum``
    numpy-replica pairwise summation, exported so the Python side can
    probe bitwise agreement with ``np.sum`` before trusting the batch
    path on a given host.

Compilation prefers ``-fopenmp -march=native`` and silently retries the
remaining flag combinations, so hosts lacking libgomp (or a compiler that
rejects ``-march=native``) still get a working kernel. The in-kernel
thread count is governed by :func:`native_threads`, which mirrors
``REPRO_WORKERS`` semantics via ``REPRO_NATIVE_THREADS`` and guards against
oversubscription when an outer process pool is already fanning out.

Everything here degrades gracefully: no compiler, a failed compile, or
``REPRO_NATIVE=0`` in the environment all simply yield ``None``, and the
fast engine falls back to its pure-Python core (same results, smaller
speedup). Nothing is ever installed — the toolchain already present on the
host is all that is used.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shlex
import shutil
import stat
import subprocess
import tempfile
import threading
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError

__all__ = [
    "NativeKernels",
    "load_kernels",
    "load_peel_kernel",
    "native_available",
    "native_threads",
]

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_peel_kernel.c")

_lock = threading.Lock()
#: None = not yet attempted, False = unavailable, else the NativeKernels handle
_kernels: NativeKernels | bool | None = None


@dataclass(frozen=True)
class NativeKernels:
    """Configured ctypes entry points of one loaded kernel build."""

    greedy_peel: object
    fdet_batch: object
    accumulate_votes: object
    pairwise_sum: object
    has_openmp: bool


def _disabled_by_env() -> bool:
    return os.environ.get("REPRO_NATIVE", "1").strip().lower() in ("0", "false", "no", "off")


def _find_compiler() -> str | None:
    override = os.environ.get("REPRO_CC")
    if override:
        return override if shutil.which(override) else None
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def _extra_cflags() -> list[str]:
    """Extra compile flags from ``REPRO_NATIVE_CFLAGS`` (CI sanitizer hook)."""
    raw = os.environ.get("REPRO_NATIVE_CFLAGS", "")
    return shlex.split(raw) if raw.strip() else []


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_NATIVE_CACHE_DIR")
    if configured:
        return configured
    home_cache = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    if not home_cache.startswith("~"):  # expansion succeeded
        return os.path.join(home_cache, "repro-native")
    uid = os.getuid() if hasattr(os, "getuid") else "user"
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def _trusted_dir(path: str) -> bool:
    """Refuse cache dirs another local user could have planted code in.

    The shared object is loaded straight into the process, so the directory
    must belong to us and must not be writable by group/other (a predictable
    /tmp path could otherwise be pre-created with a malicious ``.so``).
    """
    if not hasattr(os, "getuid"):  # non-POSIX: no uid semantics to check
        return True
    info = os.lstat(path)
    return (
        stat.S_ISDIR(info.st_mode)
        and info.st_uid == os.getuid()
        and not (info.st_mode & (stat.S_IWGRP | stat.S_IWOTH))
    )


def _build_dir() -> tuple[str, bool]:
    """``(directory, reusable)`` to build into.

    Prefers the stable per-user cache (reusable across processes and runs).
    Any failure — unwritable parent, pre-existing dir owned by someone
    else, group/other-writable permissions — falls back to a fresh private
    temp directory, which is trusted by construction but private to this
    process (no cross-run reuse).
    """
    cache_dir = _cache_dir()
    try:
        os.makedirs(cache_dir, mode=0o700, exist_ok=True)
        if _trusted_dir(cache_dir) and os.access(cache_dir, os.W_OK):
            return cache_dir, True
    except OSError:
        pass
    return tempfile.mkdtemp(prefix="repro-native-"), False


def _compile(compiler: str, out_dir: str, reusable: bool) -> str:
    """Compile the kernel into ``out_dir`` and return the .so path.

    The cache key covers the source bytes and the extra cflags so sanitizer
    builds never collide with production builds. The preferred flag set is
    ``-fopenmp -march=native`` (the kernel is compiled on the host that runs
    it, so host codegen is always valid — the integer radix/heap loops gain
    ~10%, and no floating-point expression in the kernel has a contraction
    site, so results stay bitwise identical); compilers that reject either
    flag fall back through the combinations down to a plain serial build.
    """
    with open(_SOURCE_PATH, "rb") as handle:
        source = handle.read()
    extra = _extra_cflags()
    base_flags = ["-O3", "-shared", "-fPIC"]
    attempts = (
        ["-fopenmp", "-march=native"],
        ["-fopenmp"],
        ["-march=native"],
        [],
    )
    # the baked flags join the key too, so flag-set changes rebuild
    keyed = base_flags + attempts[0] + extra
    digest = hashlib.sha256(source + "\x00".join(keyed).encode()).hexdigest()[:16]
    so_path = os.path.join(out_dir, f"peel-{digest}.so")
    if reusable and os.path.exists(so_path):
        return so_path
    # compile to a private temp name, then atomically publish, so
    # concurrent processes never load a half-written object
    fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=out_dir)
    os.close(fd)
    try:
        base = [compiler, *base_flags, *extra, "-o", tmp_path, _SOURCE_PATH]
        for wanted in attempts:
            try:
                subprocess.run(
                    base[:1] + wanted + base[1:],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
                break
            except subprocess.CalledProcessError:
                if not wanted:
                    raise
        os.replace(tmp_path, so_path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
    return so_path


def _configure(lib: ctypes.CDLL) -> NativeKernels:
    i64_array = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
    f64_array = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
    u8_array = np.ctypeslib.ndpointer(np.uint8, flags="C_CONTIGUOUS")
    # parent columns may be compact (int32/float32) storage — including
    # read-only mmap views — so the pointer is dtype-agnostic; the kernel
    # widens each load per the explicit *_width arguments
    any_array = np.ctypeslib.ndpointer(flags="C_CONTIGUOUS")

    peel = lib.repro_greedy_peel
    peel.argtypes = [
        ctypes.c_int64,  # n
        i64_array,  # indptr
        i64_array,  # flat_other
        f64_array,  # flat_w
        f64_array,  # prio (in/out)
        ctypes.c_double,  # total
        i64_array,  # removal_order (out)
        f64_array,  # densities (out)
        ctypes.POINTER(ctypes.c_double),  # best_density (out)
        ctypes.POINTER(ctypes.c_int64),  # best_removed (out)
    ]
    peel.restype = ctypes.c_int64

    batch = lib.repro_fdet_batch
    batch.argtypes = [
        ctypes.c_int64,  # pn_users
        ctypes.c_int64,  # pn_merchants
        any_array,  # p_eu (int32 or int64 storage)
        any_array,  # p_em
        ctypes.c_int64,  # idx_width (4 or 8)
        any_array,  # p_w (float32/float64; dummy array when unweighted)
        ctypes.c_int64,  # has_weights
        ctypes.c_int64,  # w_width (4 or 8)
        f64_array,  # weight_table
        ctypes.c_int64,  # n_members
        i64_array,  # edge_ids (concatenated)
        i64_array,  # edge_off
        f64_array,  # scales
        ctypes.c_int64,  # max_blocks
        ctypes.c_int64,  # min_block_edges
        ctypes.c_double,  # min_density_ratio
        ctypes.c_int64,  # frozen_policy
        ctypes.c_int64,  # n_threads
        i64_array,  # out_status
        i64_array,  # out_nu
        i64_array,  # out_nm
        i64_array,  # kept_users slab
        i64_array,  # ku_off
        i64_array,  # kept_merchants slab
        i64_array,  # km_off
        i64_array,  # out_n_blocks
        f64_array,  # block_density
        i64_array,  # block_n_edges
        u8_array,  # block_masks slab
        i64_array,  # mask_off
    ]
    batch.restype = ctypes.c_int64

    votes = lib.repro_accumulate_votes
    votes.argtypes = [i64_array, ctypes.c_int64, i64_array]
    votes.restype = ctypes.c_int64

    psum = lib.repro_pairwise_sum
    psum.argtypes = [f64_array, ctypes.c_int64]
    psum.restype = ctypes.c_double

    omp = lib.repro_has_openmp
    omp.argtypes = []
    omp.restype = ctypes.c_int64

    return NativeKernels(
        greedy_peel=peel,
        fdet_batch=batch,
        accumulate_votes=votes,
        pairwise_sum=psum,
        has_openmp=bool(omp()),
    )


def _compile_and_load() -> NativeKernels | None:
    compiler = _find_compiler()
    if compiler is None:
        return None
    out_dir, reusable = _build_dir()
    so_path = _compile(compiler, out_dir, reusable)
    return _configure(ctypes.CDLL(so_path))


def load_kernels() -> NativeKernels | None:
    """The loaded kernel handle, or ``None`` when unavailable."""
    global _kernels
    if _kernels is not None:
        return _kernels or None
    with _lock:
        if _kernels is None:
            if _disabled_by_env():
                _kernels = False
            else:
                try:
                    _kernels = _compile_and_load() or False
                except Exception:  # any toolchain hiccup -> python fallback
                    _kernels = False
        return _kernels or None


def load_peel_kernel() -> object | None:
    """The single-peel kernel function, or ``None`` when unavailable."""
    kernels = load_kernels()
    return kernels.greedy_peel if kernels is not None else None


def native_available() -> bool:
    """``True`` when the compiled kernel can be (or has been) loaded."""
    return load_kernels() is not None


def native_threads(n_workers: int = 1) -> int:
    """In-kernel OpenMP thread count for one worker of an ``n_workers`` pool.

    Mirrors ``REPRO_WORKERS`` semantics: ``REPRO_NATIVE_THREADS`` pins the
    count explicitly (a non-integer raises :class:`ReproError`), otherwise
    every visible core is used. Either way the result is capped at
    ``cores // n_workers`` so a process pool that already fans out workers
    never oversubscribes the machine (``workers x threads <= cores``), and
    is floored at 1.
    """
    cores = os.cpu_count() or 1
    cap = max(1, cores // max(1, n_workers))
    raw = os.environ.get("REPRO_NATIVE_THREADS")
    if raw is None or not raw.strip():
        return cap
    try:
        pinned = int(raw)
    except ValueError:
        raise ReproError(
            f"REPRO_NATIVE_THREADS must be an integer, got {raw!r}"
        ) from None
    return max(1, min(pinned, cap))


def _reset_for_tests() -> None:
    """Forget the cached load attempt (tests exercise env-driven paths)."""
    global _kernels
    with _lock:
        _kernels = None
