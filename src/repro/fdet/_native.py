"""On-demand compilation and loading of the C peeling kernel.

The ``fast`` peel engine prefers a small dependency-free C kernel
(``_peel_kernel.c``) driven through :mod:`ctypes`. The kernel has no
Python.h dependency, so any system C compiler can build it; the shared
object is cached in a per-user temp directory keyed by the source hash, so
compilation happens at most once per source version per machine.

Everything here degrades gracefully: no compiler, a failed compile, or
``REPRO_NATIVE=0`` in the environment all simply yield ``None``, and the
fast engine falls back to its pure-Python core (same results, smaller
speedup). Nothing is ever installed — the toolchain already present on the
host is all that is used.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import stat
import subprocess
import tempfile
import threading

import numpy as np

__all__ = ["load_peel_kernel", "native_available"]

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_peel_kernel.c")

_lock = threading.Lock()
#: None = not yet attempted, False = unavailable, else the configured cfunc
_kernel: object = None


def _disabled_by_env() -> bool:
    return os.environ.get("REPRO_NATIVE", "1").strip().lower() in ("0", "false", "no", "off")


def _find_compiler() -> str | None:
    override = os.environ.get("REPRO_CC")
    if override:
        return override if shutil.which(override) else None
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_NATIVE_CACHE_DIR")
    if configured:
        return configured
    home_cache = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    if not home_cache.startswith("~"):  # expansion succeeded
        return os.path.join(home_cache, "repro-native")
    uid = os.getuid() if hasattr(os, "getuid") else "user"
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def _trusted_dir(path: str) -> bool:
    """Refuse cache dirs another local user could have planted code in.

    The shared object is loaded straight into the process, so the directory
    must belong to us and must not be writable by group/other (a predictable
    /tmp path could otherwise be pre-created with a malicious ``.so``).
    """
    if not hasattr(os, "getuid"):  # non-POSIX: no uid semantics to check
        return True
    info = os.lstat(path)
    return (
        stat.S_ISDIR(info.st_mode)
        and info.st_uid == os.getuid()
        and not (info.st_mode & (stat.S_IWGRP | stat.S_IWOTH))
    )


def _compile_and_load() -> object | None:
    compiler = _find_compiler()
    if compiler is None:
        return None
    with open(_SOURCE_PATH, "rb") as handle:
        source = handle.read()
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache_dir = _cache_dir()
    os.makedirs(cache_dir, mode=0o700, exist_ok=True)
    if not _trusted_dir(cache_dir):
        return None  # pre-existing dir we don't own -> python fallback
    so_path = os.path.join(cache_dir, f"peel-{digest}.so")
    if not os.path.exists(so_path):
        # compile to a private temp name, then atomically publish, so
        # concurrent processes never load a half-written object
        fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=cache_dir)
        os.close(fd)
        try:
            subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", tmp_path, _SOURCE_PATH],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, so_path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
    lib = ctypes.CDLL(so_path)
    i64_array = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
    f64_array = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
    func = lib.repro_greedy_peel
    func.argtypes = [
        ctypes.c_int64,  # n
        i64_array,  # indptr
        i64_array,  # flat_other
        f64_array,  # flat_w
        f64_array,  # prio (in/out)
        ctypes.c_double,  # total
        i64_array,  # removal_order (out)
        f64_array,  # densities (out)
        ctypes.POINTER(ctypes.c_double),  # best_density (out)
        ctypes.POINTER(ctypes.c_int64),  # best_removed (out)
    ]
    func.restype = ctypes.c_int64
    return func


def load_peel_kernel() -> object | None:
    """The compiled kernel function, or ``None`` when unavailable."""
    global _kernel
    if _kernel is not None:
        return _kernel or None
    with _lock:
        if _kernel is None:
            if _disabled_by_env():
                _kernel = False
            else:
                try:
                    _kernel = _compile_and_load() or False
                except Exception:  # any toolchain hiccup -> python fallback
                    _kernel = False
        return _kernel or None


def native_available() -> bool:
    """``True`` when the compiled kernel can be (or has been) loaded."""
    return load_peel_kernel() is not None
