"""FDET: heuristic k-disjoint dense-block detection (paper §IV-B)."""

from .density import (
    AverageDegreeDensity,
    DensityMetric,
    LogWeightedDensity,
    PAPER_DENSITY,
    PriorWeightedDensity,
)
from .fdet import Block, Fdet, FdetConfig, FdetResult, WeightPolicy
from .peeling import PeelEngine, PeelResult, greedy_peel
from .peeling_fast import PeelContext, fast_peel
from .truncation import (
    FirstDifferenceRule,
    FixedKRule,
    SecondDifferenceRule,
    TruncationRule,
    second_differences,
)

__all__ = [
    "DensityMetric",
    "LogWeightedDensity",
    "AverageDegreeDensity",
    "PriorWeightedDensity",
    "PAPER_DENSITY",
    "Block",
    "Fdet",
    "FdetConfig",
    "FdetResult",
    "WeightPolicy",
    "PeelEngine",
    "PeelResult",
    "PeelContext",
    "greedy_peel",
    "fast_peel",
    "TruncationRule",
    "SecondDifferenceRule",
    "FirstDifferenceRule",
    "FixedKRule",
    "second_differences",
]
