"""FDET: heuristic k-disjoint dense-block detection (paper §IV-B)."""

from .density import (
    AverageDegreeDensity,
    DensityMetric,
    LogWeightedDensity,
    PAPER_DENSITY,
    PriorWeightedDensity,
)
from .fdet import Block, Fdet, FdetConfig, FdetResult, WeightPolicy
from .peeling import PeelResult, greedy_peel
from .truncation import (
    FirstDifferenceRule,
    FixedKRule,
    SecondDifferenceRule,
    TruncationRule,
    second_differences,
)

__all__ = [
    "DensityMetric",
    "LogWeightedDensity",
    "AverageDegreeDensity",
    "PriorWeightedDensity",
    "PAPER_DENSITY",
    "Block",
    "Fdet",
    "FdetConfig",
    "FdetResult",
    "WeightPolicy",
    "PeelResult",
    "greedy_peel",
    "TruncationRule",
    "SecondDifferenceRule",
    "FirstDifferenceRule",
    "FixedKRule",
    "second_differences",
]
